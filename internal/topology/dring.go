package topology

import "fmt"

// DRingSpec describes a DRing (§3.2): a ring "supergraph" of m supernodes
// where supernode i is connected to supernodes i+1 and i+2 (cyclically).
// Supernode i contains Sizes[i] ToR switches, and every pair of ToRs in
// adjacent supernodes is joined by a direct link. Servers fill each ToR's
// remaining ports, so all switches play the exact same role.
type DRingSpec struct {
	Sizes []int // ToRs per supernode; len(Sizes) = number of supernodes
	Ports int   // switch radix
}

// Uniform returns a spec with m supernodes of n ToRs each.
func Uniform(m, n, ports int) DRingSpec {
	sizes := make([]int, m)
	for i := range sizes {
		sizes[i] = n
	}
	return DRingSpec{Sizes: sizes, Ports: ports}
}

// BalancedDRing returns a spec for m supernodes over exactly `switches`
// ToRs, with supernode sizes differing by at most one and larger supernodes
// interleaved around the ring to keep network degrees close to uniform.
func BalancedDRing(switches, m, ports int) DRingSpec {
	sizes := make([]int, m)
	base, extra := switches/m, switches%m
	for i := range sizes {
		sizes[i] = base
	}
	// Interleave the +1s as evenly as possible around the ring.
	for k := 0; k < extra; k++ {
		sizes[(k*m)/extra]++
	}
	return DRingSpec{Sizes: sizes, Ports: ports}
}

// Supernodes returns the number of supernodes m.
func (s DRingSpec) Supernodes() int { return len(s.Sizes) }

// Switches returns the total ToR count.
func (s DRingSpec) Switches() int {
	t := 0
	for _, n := range s.Sizes {
		t += n
	}
	return t
}

// Validate checks that the ring construction is feasible: at least 5
// supernodes (so i±1 and i±2 are four distinct neighbors), positive sizes,
// and enough ports at every ToR for its network links.
func (s DRingSpec) Validate() error {
	m := len(s.Sizes)
	if m < 5 {
		return fmt.Errorf("dring: need at least 5 supernodes, have %d: %w", m, ErrInfeasible)
	}
	for i, n := range s.Sizes {
		if n <= 0 {
			return fmt.Errorf("dring: supernode %d has size %d: %w", i, n, ErrInfeasible)
		}
		if d := s.networkDegree(i); d >= s.Ports {
			return fmt.Errorf("dring: supernode %d needs %d network ports, radix %d leaves no server ports: %w",
				i, d, s.Ports, ErrInfeasible)
		}
	}
	return nil
}

// networkDegree returns the network degree of any ToR in supernode i:
// the sum of the sizes of the four adjacent supernodes.
func (s DRingSpec) networkDegree(i int) int {
	m := len(s.Sizes)
	return s.Sizes[(i+1)%m] + s.Sizes[(i+2)%m] + s.Sizes[(i+m-1)%m] + s.Sizes[(i+m-2)%m]
}

// DRing builds the fabric described by spec. ToRs are numbered supernode by
// supernode; every ToR's spare ports (radix minus network degree) host
// servers, which makes the network flat by construction.
func DRing(spec DRingSpec) (*Graph, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m := len(spec.Sizes)
	g := New(fmt.Sprintf("dring(m=%d,tors=%d)", m, spec.Switches()), spec.Switches(), spec.Ports)

	// base[i] = id of the first ToR in supernode i.
	base := make([]int, m+1)
	for i, n := range spec.Sizes {
		base[i+1] = base[i] + n
	}
	// Connect every ToR pair across supernode adjacencies (i, i+1), (i, i+2).
	for i := 0; i < m; i++ {
		for _, off := range []int{1, 2} {
			j := (i + off) % m
			for a := base[i]; a < base[i+1]; a++ {
				for b := base[j]; b < base[j+1]; b++ {
					if err := g.AddLink(a, b); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	for v := 0; v < g.N(); v++ {
		g.SetServers(v, spec.Ports-g.NetworkDegree(v))
	}
	return g, nil
}

// SupernodeOf returns the supernode index of ToR v under spec.
func (s DRingSpec) SupernodeOf(v int) int {
	for i, n := range s.Sizes {
		if v < n {
			return i
		}
		v -= n
	}
	return -1
}

// PaperDRing is the §5.1 configuration: a 12-supernode DRing built from the
// same 80 switches (radix 64) as leaf-spine(48,16). Supernode sizes differ
// by at most one (80 = 8×7 + 4×6); the paper reports 80 racks and 2988
// servers, which this construction reproduces to within a handful of server
// ports (the exact count depends on the unpublished ring arrangement).
func PaperDRing() DRingSpec {
	return BalancedDRing(PaperLeafSpine.Switches(), 12, PaperLeafSpine.Radix())
}

// Fig6DRing is the §6.3 scale-sweep configuration: supernodes of 6 ToRs,
// 60-port switches, 36 server links per ToR (network degree 24 = 4×6).
func Fig6DRing(supernodes int) DRingSpec {
	return Uniform(supernodes, 6, 60)
}
