package topology

import (
	"fmt"
	"math/rand"
)

// RRG builds a random graph with the given per-switch network-degree
// sequence via stub matching (the Jellyfish construction [23]), rejecting
// self-loops and parallel links with bounded local repair. All switches are
// created server-less; callers attach servers afterwards (see Flatten).
//
// The degree sequence must have an even sum. RRG retries whole constructions
// when repair fails, and returns ErrInfeasible after exhausting attempts
// (which only happens for adversarial degree sequences).
func RRG(name string, degrees []int, rng *rand.Rand) (*Graph, error) {
	sum := 0
	for i, d := range degrees {
		if d < 0 {
			return nil, fmt.Errorf("rrg: negative degree %d at switch %d: %w", d, i, ErrInfeasible)
		}
		sum += d
	}
	if sum%2 != 0 {
		return nil, fmt.Errorf("rrg: odd degree sum %d: %w", sum, ErrInfeasible)
	}
	const attempts = 200
	for a := 0; a < attempts; a++ {
		g, ok := rrgAttempt(name, degrees, rng)
		if ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("rrg: no simple graph found for degree sequence after %d attempts: %w", attempts, ErrInfeasible)
}

// rrgAttempt performs one stub-matching pass followed by edge-swap repair.
func rrgAttempt(name string, degrees []int, rng *rand.Rand) (*Graph, bool) {
	n := len(degrees)
	var stubs []int
	for v, d := range degrees {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })

	type edge struct{ a, b int }
	edges := make([]edge, 0, len(stubs)/2)
	have := make(map[[2]int]bool, len(stubs)/2)
	key := func(a, b int) [2]int { return [2]int{min(a, b), max(a, b)} }

	var bad []edge // self-loops or duplicates needing repair
	for i := 0; i+1 < len(stubs); i += 2 {
		a, b := stubs[i], stubs[i+1]
		k := key(a, b)
		if a == b || have[k] {
			bad = append(bad, edge{a, b})
			continue
		}
		have[k] = true
		edges = append(edges, edge{a, b})
	}

	// Repair: for each bad pair (a,b), pick a random existing edge (c,d) and
	// rewire to (a,c) and (b,d) if both are new simple edges.
	for _, e := range bad {
		repaired := false
		for t := 0; t < 200 && len(edges) > 0; t++ {
			j := rng.Intn(len(edges))
			o := edges[j]
			c, d := o.a, o.b
			if rng.Intn(2) == 0 {
				c, d = d, c
			}
			if e.a == c || e.b == d || have[key(e.a, c)] || have[key(e.b, d)] {
				continue
			}
			delete(have, key(o.a, o.b))
			edges[j] = edge{e.a, c}
			have[key(e.a, c)] = true
			edges = append(edges, edge{e.b, d})
			have[key(e.b, d)] = true
			repaired = true
			break
		}
		if !repaired {
			return nil, false
		}
	}

	g := New(name, n, 0)
	for _, e := range edges {
		if err := g.AddLink(e.a, e.b); err != nil {
			return nil, false
		}
	}
	return g, true
}

// RegularRRG builds a d-regular random graph on n switches. Very dense
// requests (d > (n-1)/2) are built as the complement of a sparse random
// regular graph, where stub matching is reliable.
func RegularRRG(name string, n, d int, rng *rand.Rand) (*Graph, error) {
	if d >= n {
		return nil, fmt.Errorf("rrg: degree %d >= switches %d: %w", d, n, ErrInfeasible)
	}
	if d < 0 || n*d%2 != 0 {
		return nil, fmt.Errorf("rrg: no %d-regular graph on %d switches: %w", d, n, ErrInfeasible)
	}
	if d > (n-1)/2 && (n-1-d == 0 || n*(n-1-d)%2 == 0) {
		sparse, err := RegularRRG(name, n, n-1-d, rng)
		if err != nil {
			return nil, err
		}
		return complement(name, sparse)
	}
	degrees := make([]int, n)
	for i := range degrees {
		degrees[i] = d
	}
	return RRG(name, degrees, rng)
}

// complement returns the simple-graph complement (no servers, no radix).
// AddLink can only fail if g is not simple, which the RRG construction
// guarantees against; the error is propagated rather than panicking so a
// violated invariant surfaces as a diagnosable construction failure.
func complement(name string, g *Graph) (*Graph, error) {
	n := g.N()
	out := New(name, n, 0)
	adj := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = make(map[int]bool, g.NetworkDegree(v))
		for _, w := range g.Neighbors(v) {
			adj[v][w] = true
		}
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if !adj[a][b] {
				if err := out.AddLink(a, b); err != nil {
					return nil, fmt.Errorf("rrg: complement of non-simple graph %q: %w", name, err)
				}
			}
		}
	}
	return out, nil
}
