package topology

import (
	"fmt"
)

// The paper's flat fabrics are built "by rewiring the baseline leaf-spine
// topology" (§5.1). An operator doing that to a production network needs
// the rewiring as a sequence of single cable moves that never partitions
// the fabric. PlanMigration computes such a sequence.

// CableMove is one migration step: unplug the cable between RemoveA and
// RemoveB and replug it between AddA and AddB, as one atomic maintenance
// action.
type CableMove struct {
	RemoveA, RemoveB int
	AddA, AddB       int
}

// MigrationPlan is an ordered sequence of cable moves from one fabric to
// another built on the same switches, plus the server-port reassignments
// the flat rewiring needs.
type MigrationPlan struct {
	Steps []CableMove
	// ServerMoves counts server-port reassignments between switches
	// (|Δ servers| summed over switches, halved).
	ServerMoves int
}

// PlanMigration orders the rewiring from fabric `from` to fabric `to`
// (same switch count) such that after every individual cable move the
// fabric remains connected. Surplus old links (when `from` has more links
// than `to`) are pure removals appended at the end; deficits are pure
// additions. It returns an error if no connectivity-preserving order could
// be found greedily.
func PlanMigration(from, to *Graph) (MigrationPlan, error) {
	if from.N() != to.N() {
		return MigrationPlan{}, fmt.Errorf("topology: migrate between different switch counts (%d vs %d)", from.N(), to.N())
	}
	cur := from.Clone()
	oldOnly := edgeDiff(from, to)
	newOnly := edgeDiff(to, from)

	var plan MigrationPlan
	for len(oldOnly) > 0 && len(newOnly) > 0 {
		placed := false
		for oi, o := range oldOnly {
			for ni, n := range newOnly {
				cur.RemoveLink(o[0], o[1])
				if err := cur.AddLink(n[0], n[1]); err != nil {
					cur.AddLink(o[0], o[1]) //nolint:errcheck // restoring a just-removed link cannot fail
					continue
				}
				if cur.Connected() {
					plan.Steps = append(plan.Steps, CableMove{o[0], o[1], n[0], n[1]})
					oldOnly = append(oldOnly[:oi], oldOnly[oi+1:]...)
					newOnly = append(newOnly[:ni], newOnly[ni+1:]...)
					placed = true
					break
				}
				cur.RemoveLink(n[0], n[1])
				cur.AddLink(o[0], o[1]) //nolint:errcheck // restoring a just-removed link cannot fail
			}
			if placed {
				break
			}
		}
		if !placed {
			return MigrationPlan{}, fmt.Errorf("topology: no connectivity-preserving move left (%d old, %d new edges pending)", len(oldOnly), len(newOnly))
		}
	}
	// Leftovers: pure additions first (safe), then pure removals that keep
	// connectivity.
	for _, n := range newOnly {
		if err := cur.AddLink(n[0], n[1]); err != nil {
			return MigrationPlan{}, err
		}
		plan.Steps = append(plan.Steps, CableMove{-1, -1, n[0], n[1]})
	}
	for len(oldOnly) > 0 {
		placed := false
		for oi, o := range oldOnly {
			cur.RemoveLink(o[0], o[1])
			if cur.Connected() {
				plan.Steps = append(plan.Steps, CableMove{o[0], o[1], -1, -1})
				oldOnly = append(oldOnly[:oi], oldOnly[oi+1:]...)
				placed = true
				break
			}
			cur.AddLink(o[0], o[1]) //nolint:errcheck // restoring a just-removed link cannot fail
		}
		if !placed {
			return MigrationPlan{}, fmt.Errorf("topology: surplus removal would partition the fabric")
		}
	}
	for v := 0; v < from.N(); v++ {
		d := to.ServerCount(v) - from.ServerCount(v)
		if d > 0 {
			plan.ServerMoves += d
		}
	}
	return plan, nil
}

// edgeDiff returns the multiset of edges in a but not b (respecting
// multiplicity).
func edgeDiff(a, b *Graph) [][2]int {
	remaining := map[[2]int]int{}
	for v := 0; v < b.N(); v++ {
		for _, w := range b.Neighbors(v) {
			if v < w {
				remaining[[2]int{v, w}]++
			}
		}
	}
	var out [][2]int
	for v := 0; v < a.N(); v++ {
		for _, w := range a.Neighbors(v) {
			if v >= w {
				continue
			}
			k := [2]int{v, w}
			if remaining[k] > 0 {
				remaining[k]--
				continue
			}
			out = append(out, k)
		}
	}
	return out
}

// Apply replays a plan on a copy of `from`, verifying connectivity after
// every step, and returns the final fabric. Server counts are set to the
// target's at the end (server moves are rack work, not fabric risk).
func (p MigrationPlan) Apply(from, to *Graph) (*Graph, error) {
	cur := from.Clone()
	for i, s := range p.Steps {
		if s.RemoveA >= 0 {
			if !cur.RemoveLink(s.RemoveA, s.RemoveB) {
				return nil, fmt.Errorf("topology: step %d removes missing link %d-%d", i, s.RemoveA, s.RemoveB)
			}
		}
		if s.AddA >= 0 {
			if err := cur.AddLink(s.AddA, s.AddB); err != nil {
				return nil, fmt.Errorf("topology: step %d: %w", i, err)
			}
		}
		if !cur.Connected() {
			return nil, fmt.Errorf("topology: step %d partitions the fabric", i)
		}
	}
	for v := 0; v < cur.N(); v++ {
		cur.SetServers(v, to.ServerCount(v))
	}
	cur.Name = to.Name
	cur.Ports = to.Ports
	return cur, nil
}
