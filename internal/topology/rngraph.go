package topology

import (
	"fmt"
	"math/rand"
)

// RNGSpec describes AWS's random-neighbor-graph fabric ("Flat Datacenter
// Networks at Scale", arXiv:2604.15261): the union of Degree independent
// uniform perfect matchings over an even number of switches. Every switch
// lands at exactly network degree Degree — the regularity is structural,
// not repaired after the fact — and the spare ports host servers, so the
// fabric is flat exactly like DRing. Compared to Jellyfish's stub matching
// the per-matching construction is what makes incremental expansion cheap
// in the AWS design: a new matching is one more round of pairings.
type RNGSpec struct {
	Switches int // even switch count
	Degree   int // network links per switch = number of matchings
	Ports    int // switch radix
}

// Validate checks that the matching-union construction is feasible: an even
// number of at least 4 switches, a positive degree below the simple-graph
// limit, and enough ports per switch for the network links plus at least
// one server.
func (s RNGSpec) Validate() error {
	if s.Switches < 4 || s.Switches%2 != 0 {
		return fmt.Errorf("rng: need an even switch count of at least 4 for perfect matchings, have %d: %w", s.Switches, ErrInfeasible)
	}
	if s.Degree < 1 || s.Degree >= s.Switches {
		return fmt.Errorf("rng: degree %d infeasible on %d switches: %w", s.Degree, s.Switches, ErrInfeasible)
	}
	if s.Degree >= s.Ports {
		return fmt.Errorf("rng: degree %d needs radix above %d, have %d: %w", s.Degree, s.Degree, s.Ports, ErrInfeasible)
	}
	return nil
}

// RNG builds the fabric described by spec: Degree rounds of uniform perfect
// matchings, each repaired locally by partner swaps when a pairing would
// duplicate an earlier link. Whole constructions are retried when repair
// gets stuck or the union comes out disconnected, and ErrInfeasible is
// returned after exhausting attempts (dense degrees on tiny fabrics).
// Servers fill each switch's remaining ports.
func RNG(spec RNGSpec, rng *rand.Rand) (*Graph, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	const attempts = 200
	for a := 0; a < attempts; a++ {
		g, ok := rngAttempt(spec, rng)
		if !ok || !g.Connected() {
			continue
		}
		for v := 0; v < g.N(); v++ {
			g.SetServers(v, spec.Ports-spec.Degree)
		}
		return g, nil
	}
	return nil, fmt.Errorf("rng: no connected %d-matching union on %d switches after %d attempts: %w",
		spec.Degree, spec.Switches, attempts, ErrInfeasible)
}

// rngAttempt performs one union-of-matchings pass. Each matching is a
// shuffled pairing of all switches; a pair that duplicates an existing link
// is repaired by swapping partners with another pair of the same matching.
func rngAttempt(spec RNGSpec, rng *rand.Rand) (*Graph, bool) {
	n := spec.Switches
	g := New(fmt.Sprintf("rng(n=%d,d=%d)", n, spec.Degree), n, spec.Ports)
	perm := make([]int, n)

	for m := 0; m < spec.Degree; m++ {
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		// Repair in place: pair (perm[2i], perm[2i+1]) swaps its second
		// endpoint with a random later pair until both pairings are new.
		for i := 0; i+1 < n; i += 2 {
			repaired := !g.HasLink(perm[i], perm[i+1])
			later := n/2 - i/2 - 1 // pairs after this one
			for t := 0; t < 200 && !repaired && later > 0; t++ {
				j := i + 2 + 2*rng.Intn(later) // random later pair
				side := rng.Intn(2)
				perm[i+1], perm[j+side] = perm[j+side], perm[i+1]
				repaired = !g.HasLink(perm[i], perm[i+1]) && !g.HasLink(perm[j], perm[j+1])
				if !repaired { // undo and retry
					perm[i+1], perm[j+side] = perm[j+side], perm[i+1]
				}
			}
			if !repaired {
				return nil, false
			}
		}
		for i := 0; i+1 < n; i += 2 {
			if err := g.AddLink(perm[i], perm[i+1]); err != nil {
				return nil, false
			}
		}
	}
	return g, true
}
