package topology

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT emits the fabric as a Graphviz DOT graph: switches as boxes
// labelled with their server counts, network links as edges (parallel
// links drawn individually). Handy for eyeballing small fabrics:
//
//	go run ./cmd/spineless topo -dot | dot -Tsvg > fabric.svg
func WriteDOT(w io.Writer, g *Graph) error {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", sanitizeDOT(g.Name))
	b.WriteString("  node [shape=box, fontname=\"Helvetica\", fontsize=10];\n")
	b.WriteString("  edge [color=\"#888888\"];\n")
	for v := 0; v < g.N(); v++ {
		label := fmt.Sprintf("s%d", v)
		if c := g.ServerCount(v); c > 0 {
			label = fmt.Sprintf("s%d\\n%d srv", v, c)
		}
		fill := "#eef4fb"
		if g.ServerCount(v) == 0 {
			fill = "#fbeeee" // serverless switches (spines/cores) tinted red
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\", style=filled, fillcolor=%q];\n", v, label, fill)
	}
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if v < u {
				fmt.Fprintf(&b, "  n%d -- n%d;\n", v, u)
			}
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func sanitizeDOT(s string) string {
	return strings.Map(func(r rune) rune {
		if r == '"' || r == '\\' || r == '\n' {
			return '_'
		}
		return r
	}, s)
}
