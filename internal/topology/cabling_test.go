package topology

import (
	"math"
	"testing"
)

func TestRowPlacement(t *testing.T) {
	g := New("g", 4, 8)
	p := RowPlacement(g)
	for i, pos := range p.Pos {
		if pos != i {
			t.Fatalf("RowPlacement = %v", p.Pos)
		}
	}
}

func TestLeafSpinePlacementSpinesCentered(t *testing.T) {
	spec := LeafSpineSpec{X: 6, Y: 2}
	p := LeafSpinePlacement(spec)
	if len(p.Pos) != spec.Switches() {
		t.Fatalf("placement size = %d", len(p.Pos))
	}
	// All positions distinct and cover 0..n-1.
	seen := make([]bool, spec.Switches())
	for _, pos := range p.Pos {
		if pos < 0 || pos >= len(seen) || seen[pos] {
			t.Fatalf("bad placement %v", p.Pos)
		}
		seen[pos] = true
	}
	// Spines sit strictly inside the row.
	for s := spec.Leaves(); s < spec.Switches(); s++ {
		if p.Pos[s] == 0 || p.Pos[s] == spec.Switches()-1 {
			t.Fatalf("spine %d placed at row end (%d)", s, p.Pos[s])
		}
	}
}

func TestCablingSimple(t *testing.T) {
	// 3 racks in a row: links 0-1 (len 1), 0-2 (len 2), plus a parallel 0-1.
	g := New("g", 3, 8)
	mustLink(t, g, 0, 1)
	mustLink(t, g, 0, 1)
	mustLink(t, g, 0, 2)
	rep, err := Cabling(g, RowPlacement(g))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Links != 3 || rep.TotalLength != 4 || rep.MaxLength != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Bundles != 2 || rep.MaxBundle != 2 {
		t.Fatalf("bundles = %+v", rep)
	}
	if math.Abs(rep.MeanLength-4.0/3) > 1e-12 {
		t.Fatalf("mean = %v", rep.MeanLength)
	}
	sizes := SortedBundleSizes(g, RowPlacement(g))
	if len(sizes) != 2 || sizes[0] != 2 || sizes[1] != 1 {
		t.Fatalf("bundle sizes = %v", sizes)
	}
}

func TestCablingPlacementMismatch(t *testing.T) {
	g := New("g", 3, 8)
	if _, err := Cabling(g, Placement{Pos: []int{0}}); err == nil {
		t.Fatal("bad placement accepted")
	}
}

// TestCablingDRingShorterThanRRG pins the §1 deployment argument the DRing
// is designed around: with ToRs laid out in ring order, DRing cables only
// span nearby racks, while an equipment-matched RRG needs row-length runs.
func TestCablingDRingShorterThanRRG(t *testing.T) {
	spec := Uniform(10, 3, 30)
	dr, err := DRing(spec)
	if err != nil {
		t.Fatal(err)
	}
	degrees := make([]int, dr.N())
	for v := range degrees {
		degrees[v] = dr.NetworkDegree(v)
	}
	rrg, err := RRG("rrg", degrees, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	drRep, err := Cabling(dr, RowPlacement(dr))
	if err != nil {
		t.Fatal(err)
	}
	rrgRep, err := Cabling(rrg, RowPlacement(rrg))
	if err != nil {
		t.Fatal(err)
	}
	// The row layout wraps the ring's seam across the full row, so even the
	// DRing has a few long runs — but mean length and long-haul count must
	// be clearly smaller than random wiring.
	if drRep.MeanLength >= rrgRep.MeanLength {
		t.Fatalf("DRing mean cable %.2f not shorter than RRG %.2f", drRep.MeanLength, rrgRep.MeanLength)
	}
	if drRep.LongHaul >= rrgRep.LongHaul {
		t.Fatalf("DRing long-haul %d not fewer than RRG %d", drRep.LongHaul, rrgRep.LongHaul)
	}
	// Trunking at supernode granularity: the DRing needs few fat trunks
	// (one per adjacent supernode pair); random wiring scatters.
	drTrunks, drMax, err := GroupedBundles(dr, RowPlacement(dr), spec.Sizes[0])
	if err != nil {
		t.Fatal(err)
	}
	rrgTrunks, rrgMax, err := GroupedBundles(rrg, RowPlacement(rrg), spec.Sizes[0])
	if err != nil {
		t.Fatal(err)
	}
	if drTrunks >= rrgTrunks {
		t.Fatalf("DRing trunks %d not fewer than RRG %d", drTrunks, rrgTrunks)
	}
	if drMax <= rrgMax {
		t.Fatalf("DRing max trunk %d not fatter than RRG %d", drMax, rrgMax)
	}
	// DRing trunk count is exactly 2 per supernode (offsets +1, +2).
	if drTrunks != 2*spec.Supernodes() {
		t.Fatalf("DRing trunks = %d, want %d", drTrunks, 2*spec.Supernodes())
	}
}

func TestGroupedBundlesValidation(t *testing.T) {
	g := New("g", 2, 4)
	if _, _, err := GroupedBundles(g, Placement{Pos: []int{0}}, 1); err == nil {
		t.Fatal("bad placement accepted")
	}
	if _, _, err := GroupedBundles(g, RowPlacement(g), 0); err == nil {
		t.Fatal("zero group size accepted")
	}
}

func TestLifecycleRoles(t *testing.T) {
	ls, err := LeafSpine(LeafSpineSpec{X: 6, Y: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r := Lifecycle(ls); r.SwitchRoles != 2 {
		t.Fatalf("leaf-spine roles = %d, want 2", r.SwitchRoles)
	}
	dr, err := DRing(Uniform(8, 2, 20))
	if err != nil {
		t.Fatal(err)
	}
	if r := Lifecycle(dr); r.SwitchRoles != 1 || r.DegreeSpread != 0 {
		t.Fatalf("uniform DRing roles = %+v, want a single role", r)
	}
}

func TestLifecycleDRingExpansionUnit(t *testing.T) {
	rep, err := LifecycleDRing(Uniform(8, 2, 20))
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExpansionUnit <= 0 || rep.ExpansionUnit > 8 {
		t.Fatalf("expansion unit = %d, want seam-local (<= 4 supernodes × 2 ToRs)", rep.ExpansionUnit)
	}
	if _, err := LifecycleDRing(Uniform(3, 2, 20)); err == nil {
		t.Fatal("invalid spec accepted")
	}
}
