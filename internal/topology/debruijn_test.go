package topology

import (
	"errors"
	"math/rand"
	"testing"
)

// TestDeBruijnDeterministic pins DeBruijn construction, which — like DRing —
// must be fully deterministic without a seed: the builder uses no randomness,
// so two builds of one spec are identical, not merely isomorphic.
func TestDeBruijnDeterministic(t *testing.T) {
	for _, spec := range []DeBruijnSpec{
		{Symbols: 2, Digits: 4, Ports: 8},
		{Symbols: 3, Digits: 2, Ports: 10}, // dense: exercises the backtracking regularizer
		{Symbols: 9, Digits: 2, Ports: 64}, // the ×1 bake-off fit
	} {
		build := func() *Graph {
			g, err := DeBruijn(spec)
			if err != nil {
				t.Fatal(err)
			}
			return g
		}
		if a, b := adjacencySerialization(build()), adjacencySerialization(build()); a != b {
			t.Fatalf("DeBruijn%+v constructions differ:\n%s\nvs\n%s", spec, a, b)
		}
	}
}

// TestDeBruijnStructure pins the builder's structural invariants: exact
// degree regularity at min(2k, N-1), connectivity, every directed shift
// edge present (self-routing depends on all of them), servers on every
// spare port, and a consistent Graph.
func TestDeBruijnStructure(t *testing.T) {
	for _, spec := range []DeBruijnSpec{
		{Symbols: 2, Digits: 3, Ports: 8},
		{Symbols: 2, Digits: 7, Ports: 16},
		{Symbols: 3, Digits: 2, Ports: 10},
		{Symbols: 13, Digits: 2, Ports: 64},
	} {
		g, err := DeBruijn(spec)
		if err != nil {
			t.Fatalf("DeBruijn%+v: %v", spec, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("DeBruijn%+v invalid: %v", spec, err)
		}
		if !g.Connected() {
			t.Fatalf("DeBruijn%+v disconnected", spec)
		}
		n, target := spec.Switches(), spec.NetworkDegree()
		if g.N() != n {
			t.Fatalf("DeBruijn%+v: %d switches, want %d", spec, g.N(), n)
		}
		for v := 0; v < n; v++ {
			if d := g.NetworkDegree(v); d != target {
				t.Fatalf("DeBruijn%+v: switch %d has degree %d, want %d", spec, v, d, target)
			}
			if s := g.ServerCount(v); s != spec.Ports-target {
				t.Fatalf("DeBruijn%+v: switch %d hosts %d servers, want %d", spec, v, s, spec.Ports-target)
			}
			for y := 0; y < spec.Symbols; y++ {
				if w := (v*spec.Symbols + y) % n; w != v && !g.HasLink(v, w) {
					t.Fatalf("DeBruijn%+v: missing shift edge %d-%d", spec, v, w)
				}
			}
		}
		got, ok := InferDeBruijn(g)
		if !ok || got != spec {
			t.Fatalf("InferDeBruijn = %+v, %v; want %+v, true", got, ok, spec)
		}
	}
}

// TestDeBruijnRejects pins the clear-error contract for infeasible specs.
func TestDeBruijnRejects(t *testing.T) {
	for _, spec := range []DeBruijnSpec{
		{Symbols: 1, Digits: 3, Ports: 8},  // degenerate alphabet
		{Symbols: 4, Digits: 1, Ports: 16}, // no shift structure
		{Symbols: 4, Digits: 2, Ports: 8},  // degree 8 = radix: no server ports
	} {
		if _, err := DeBruijn(spec); !errors.Is(err, ErrInfeasible) {
			t.Fatalf("DeBruijn%+v = %v, want ErrInfeasible", spec, err)
		}
	}
}

// TestFitDeBruijn pins the equipment-fitting heuristic the bake-off uses:
// closest switch count first, degree closest to the budget on ties.
func TestFitDeBruijn(t *testing.T) {
	got, err := FitDeBruijn(80, 64, 26)
	if err != nil {
		t.Fatal(err)
	}
	if want := (DeBruijnSpec{Symbols: 9, Digits: 2, Ports: 64}); got != want {
		t.Fatalf("FitDeBruijn(80, 64, 26) = %+v, want %+v", got, want)
	}
	got, err = FitDeBruijn(160, 64, 26)
	if err != nil {
		t.Fatal(err)
	}
	if want := (DeBruijnSpec{Symbols: 13, Digits: 2, Ports: 64}); got != want {
		t.Fatalf("FitDeBruijn(160, 64, 26) = %+v, want %+v", got, want)
	}
	if _, err := FitDeBruijn(3, 64, 26); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("FitDeBruijn(3, ...) = %v, want ErrInfeasible", err)
	}
}

// TestInferDeBruijnRejectsOtherFabrics: spec recovery must not hallucinate
// shift structure on fabrics that merely have the right switch count.
func TestInferDeBruijnRejectsOtherFabrics(t *testing.T) {
	g, err := RegularRRG("rrg", 16, 6, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if spec, ok := InferDeBruijn(g); ok {
		t.Fatalf("InferDeBruijn(rrg) = %+v, true; want false", spec)
	}
}
