package topology

import (
	"errors"
	"math/rand"
	"testing"
)

// TestRNGDeterministicFromSeed pins the determinism contract for the
// matching-union builder, mirroring TestRRGDeterministicFromSeed: two
// constructions from the same seed must produce byte-identical wiring.
func TestRNGDeterministicFromSeed(t *testing.T) {
	spec := RNGSpec{Switches: 40, Degree: 7, Ports: 24}
	build := func() *Graph {
		g, err := RNG(spec, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	if a, b := adjacencySerialization(build()), adjacencySerialization(build()); a != b {
		t.Fatalf("same-seed RNG constructions differ:\n%s\nvs\n%s", a, b)
	}
}

// TestRNGStructure pins the structural invariants: the union of Degree
// perfect matchings is exactly Degree-regular by construction (no repair
// slack), simple, connected, and every spare port hosts a server.
func TestRNGStructure(t *testing.T) {
	for _, spec := range []RNGSpec{
		{Switches: 16, Degree: 4, Ports: 20},
		{Switches: 80, Degree: 26, Ports: 64}, // the ×1 bake-off geometry
		{Switches: 30, Degree: 9, Ports: 12},
	} {
		g, err := RNG(spec, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatalf("RNG%+v: %v", spec, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("RNG%+v invalid: %v", spec, err)
		}
		if !g.Connected() {
			t.Fatalf("RNG%+v disconnected", spec)
		}
		for v := 0; v < g.N(); v++ {
			if d := g.NetworkDegree(v); d != spec.Degree {
				t.Fatalf("RNG%+v: switch %d has degree %d, want %d", spec, v, d, spec.Degree)
			}
			if s := g.ServerCount(v); s != spec.Ports-spec.Degree {
				t.Fatalf("RNG%+v: switch %d hosts %d servers, want %d", spec, v, s, spec.Ports-spec.Degree)
			}
			for _, w := range g.Neighbors(v) {
				if g.LinkMultiplicity(v, w) != 1 {
					t.Fatalf("RNG%+v: parallel link %d-%d", spec, v, w)
				}
			}
		}
	}
}

// TestRNGRejects pins the clear-error contract for infeasible specs.
func TestRNGRejects(t *testing.T) {
	for _, spec := range []RNGSpec{
		{Switches: 15, Degree: 4, Ports: 20}, // odd: no perfect matching
		{Switches: 2, Degree: 1, Ports: 4},   // too small
		{Switches: 16, Degree: 16, Ports: 20},
		{Switches: 16, Degree: 8, Ports: 8}, // no server ports left
	} {
		if _, err := RNG(spec, rand.New(rand.NewSource(1))); !errors.Is(err, ErrInfeasible) {
			t.Fatalf("RNG%+v = %v, want ErrInfeasible", spec, err)
		}
	}
}
