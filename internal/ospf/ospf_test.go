package ospf

import (
	"testing"

	"spineless/internal/routing"
	"spineless/internal/topology"
)

func dringFabric(t *testing.T) *topology.Graph {
	t.Helper()
	g, err := topology.DRing(topology.Uniform(6, 2, 20))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFloodConverges(t *testing.T) {
	g := dringFabric(t)
	d := New(g.Clone())
	rounds := d.Flood()
	if !d.Converged() {
		t.Fatal("flooding did not converge")
	}
	// Synchronous DB sync needs about diameter+1 rounds.
	st, err := topology.RackPathStats(g)
	if err != nil {
		t.Fatal(err)
	}
	if rounds > st.Diameter+3 {
		t.Fatalf("flooding took %d rounds for diameter %d", rounds, st.Diameter)
	}
}

// TestSPFMatchesECMP: every router's locally computed next hops must equal
// the fabric-wide ECMP FIB — the §2 "OSPF with ECMP" baseline realizes
// exactly routing.NewECMP.
func TestSPFMatchesECMP(t *testing.T) {
	g := dringFabric(t)
	d := New(g.Clone())
	d.Flood()
	fib := routing.NewECMP(g)
	for r := 0; r < g.N(); r++ {
		for dst := 0; dst < g.N(); dst++ {
			if r == dst {
				continue
			}
			got := d.NextHops(r, dst)
			want := fib.NextHopRouters(r, dst)
			wantSet := map[int]bool{}
			for _, w := range want {
				wantSet[w] = true
			}
			if len(got) != len(wantSet) {
				t.Fatalf("router %d → %d: ospf %v, ecmp %v", r, dst, got, want)
			}
			for _, h := range got {
				if !wantSet[h] {
					t.Fatalf("router %d → %d: ospf hop %d not in ecmp set %v", r, dst, h, want)
				}
			}
		}
	}
}

func TestFailLinkReconvergence(t *testing.T) {
	g := dringFabric(t)
	d := New(g.Clone())
	d.Flood()
	// Fail one link and reconverge.
	a := 0
	b := d.Routers[0].LSA.Neighbors[0]
	if err := d.FailLink(a, b); err != nil {
		t.Fatal(err)
	}
	rounds := d.Flood()
	if !d.Converged() {
		t.Fatal("post-failure flooding did not converge")
	}
	if rounds < 2 {
		t.Fatalf("failure propagated in %d rounds (too fast to be real)", rounds)
	}
	// No router may still use the failed adjacency.
	for r := 0; r < len(d.Routers); r++ {
		for dst := 0; dst < len(d.Routers); dst++ {
			if r == dst {
				continue
			}
			for _, h := range d.NextHops(r, dst) {
				if (r == a && h == b) || (r == b && h == a) {
					t.Fatalf("router %d still routes via failed link to %d", r, h)
				}
			}
		}
	}
	// And the next hops must match ECMP on the degraded fabric.
	failed := d.g
	fib := routing.NewECMP(failed)
	for dst := 1; dst < failed.N(); dst++ {
		got := d.NextHops(0, dst)
		want := fib.NextHopRouters(0, dst)
		if len(got) != len(want) {
			t.Fatalf("post-failure router 0 → %d: ospf %v vs ecmp %v", dst, got, want)
		}
	}
	if err := d.FailLink(a, b); err == nil {
		t.Fatal("double failure accepted")
	}
}

func TestNextHopsUnknownDst(t *testing.T) {
	g := dringFabric(t)
	d := New(g.Clone())
	// Before flooding, routers only know themselves.
	if nh := d.NextHops(0, 5); nh != nil {
		t.Fatalf("pre-flood next hops = %v", nh)
	}
}
