// Package ospf simulates the link-state control plane that moderate-scale
// DCs run when they don't run BGP: §2 notes these networks use
// "shortest-path routing (BGP or OSPF) with equal cost multipath (ECMP)".
// Each router floods link-state advertisements (LSAs), builds the full
// topology database, and runs SPF locally; the resulting per-router ECMP
// next hops must agree with the fabric-wide computation in routing.NewECMP
// — which the tests verify. Flooding is simulated in synchronous rounds so
// convergence time (rounds ≈ fabric diameter) is measurable, including
// after link failures.
package ospf

import (
	"fmt"
	"sort"

	"spineless/internal/topology"
)

// LSA is one router's advertisement: its adjacency list and a sequence
// number (bumped on every local change).
type LSA struct {
	Router    int
	Seq       int
	Neighbors []int
}

// Router is one OSPF speaker: its own LSA plus the link-state database of
// everything it has heard.
type Router struct {
	ID  int
	LSA LSA
	DB  map[int]LSA
}

// Domain is the whole routing domain.
type Domain struct {
	g       *topology.Graph
	Routers []*Router
}

// New builds a domain where every router knows only itself.
func New(g *topology.Graph) *Domain {
	d := &Domain{g: g, Routers: make([]*Router, g.N())}
	for v := 0; v < g.N(); v++ {
		nb := append([]int(nil), g.Neighbors(v)...)
		sort.Ints(nb)
		lsa := LSA{Router: v, Seq: 1, Neighbors: nb}
		d.Routers[v] = &Router{ID: v, LSA: lsa, DB: map[int]LSA{v: lsa}}
	}
	return d
}

// Flood runs synchronous flooding rounds until every database is stable,
// returning the number of rounds taken (≈ diameter + 1).
func (d *Domain) Flood() int {
	rounds := 0
	for {
		changed := false
		// Each router offers its whole DB to its neighbors (reliable
		// flooding collapses to DB sync in the synchronous model).
		updates := make([]map[int]LSA, len(d.Routers))
		for _, r := range d.Routers {
			for _, nb := range d.g.Neighbors(r.ID) {
				for id, lsa := range d.Routers[nb].DB {
					if cur, ok := r.DB[id]; !ok || lsa.Seq > cur.Seq {
						if updates[r.ID] == nil {
							updates[r.ID] = map[int]LSA{}
						}
						if u, ok := updates[r.ID][id]; !ok || lsa.Seq > u.Seq {
							updates[r.ID][id] = lsa
						}
					}
				}
			}
		}
		for _, r := range d.Routers {
			for id, lsa := range updates[r.ID] {
				r.DB[id] = lsa
				changed = true
			}
		}
		rounds++
		if !changed {
			return rounds
		}
	}
}

// Converged reports whether every router's database covers every router
// reachable from it.
func (d *Domain) Converged() bool {
	for _, r := range d.Routers {
		dist := topology.BFS(d.g, r.ID)
		for v, dd := range dist {
			if dd >= 0 {
				if _, ok := r.DB[v]; !ok {
					return false
				}
			}
		}
	}
	return true
}

// NextHops computes router r's ECMP next hops toward dst from r's own
// database (SPF over the LSA graph), mirroring what the line cards would
// program. Unknown or unreachable destinations yield nil.
func (d *Domain) NextHops(r, dst int) []int {
	router := d.Routers[r]
	if _, ok := router.DB[dst]; !ok {
		return nil
	}
	// BFS over the database graph from dst, then pick r's neighbors one
	// step closer. Edges are used only if both endpoints advertise them
	// (two-way connectivity check, as real OSPF requires).
	adj := func(v int) []int {
		lsa, ok := router.DB[v]
		if !ok {
			return nil
		}
		var out []int
		for _, w := range lsa.Neighbors {
			peer, ok := router.DB[w]
			if !ok {
				continue
			}
			for _, back := range peer.Neighbors {
				if back == v {
					out = append(out, w)
					break
				}
			}
		}
		return out
	}
	dist := map[int]int{dst: 0}
	queue := []int{dst}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj(v) {
			if _, seen := dist[w]; !seen {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	dr, ok := dist[r]
	if !ok {
		return nil
	}
	var hops []int
	seen := map[int]bool{}
	for _, w := range adj(r) {
		if dw, ok := dist[w]; ok && dw == dr-1 && !seen[w] {
			seen[w] = true
			hops = append(hops, w)
		}
	}
	sort.Ints(hops)
	return hops
}

// FailLink withdraws the adjacency between a and b on both routers
// (bumping their LSA sequence numbers) without touching the rest of the
// domain; call Flood afterwards to measure reconvergence.
func (d *Domain) FailLink(a, b int) error {
	if !remove(&d.Routers[a].LSA, b) || !remove(&d.Routers[b].LSA, a) {
		return fmt.Errorf("ospf: no adjacency %d-%d", a, b)
	}
	d.Routers[a].DB[a] = d.Routers[a].LSA
	d.Routers[b].DB[b] = d.Routers[b].LSA
	// The physical fabric loses the link too (flooding uses it).
	if !d.g.RemoveLink(a, b) {
		return fmt.Errorf("ospf: physical link %d-%d missing", a, b)
	}
	return nil
}

func remove(l *LSA, v int) bool {
	for i, w := range l.Neighbors {
		if w == v {
			l.Neighbors = append(l.Neighbors[:i], l.Neighbors[i+1:]...)
			l.Seq++
			return true
		}
	}
	return false
}
