// Package fluid computes ideal-routing throughput under the fluid-flow
// model used by the throughput literature the paper builds on (§2: Jyothi
// et al. [13], Singla et al. [22]): traffic is infinitely divisible and a
// centralized, optimal, fractional multipath routing carries it. The
// maximum concurrent flow — the largest λ such that λ× the whole demand
// matrix is simultaneously routable — is approximated with the
// Fleischer/Garg–Könemann multiplicative-weights FPTAS, stdlib only.
//
// Comparing fluid λ against the throughput the oblivious schemes realize in
// flowsim separates what the *topology* can do from what ECMP or
// Shortest-Union(K) extracts from it.
package fluid

import (
	"container/heap"
	"fmt"
	"math"

	"spineless/internal/topology"
)

// Demand is one commodity: Amount units of demand from rack Src to rack Dst
// (switch ids).
type Demand struct {
	Src, Dst int
	Amount   float64
}

// Options tunes the approximation.
type Options struct {
	// Epsilon is the FPTAS accuracy knob; the returned λ is within ≈(1−3ε)
	// of optimal. Default 0.1.
	Epsilon float64
	// LinkCapacity is the capacity of every directed network link (default 1;
	// results scale linearly).
	LinkCapacity float64
	// MaxPhases bounds the iteration count as a safety stop. Default 4000.
	MaxPhases int
}

func (o *Options) defaults() {
	if o.Epsilon <= 0 || o.Epsilon >= 0.5 {
		o.Epsilon = 0.1
	}
	if o.LinkCapacity <= 0 {
		o.LinkCapacity = 1
	}
	if o.MaxPhases <= 0 {
		o.MaxPhases = 4000
	}
}

// MaxConcurrentFlow returns a feasible λ such that λ·Amount of every
// demand can be routed simultaneously without exceeding any directed link
// capacity, within the FPTAS guarantee of optimal. The flows themselves are
// not materialized (only per-link totals are tracked internally).
func MaxConcurrentFlow(g *topology.Graph, demands []Demand, opt Options) (float64, error) {
	opt.defaults()
	if len(demands) == 0 {
		return 0, fmt.Errorf("fluid: no demands")
	}
	net, err := newNetwork(g, opt.LinkCapacity)
	if err != nil {
		return 0, err
	}
	for i, d := range demands {
		if d.Src == d.Dst || d.Amount <= 0 {
			return 0, fmt.Errorf("fluid: demand %d invalid (src=%d dst=%d amount=%v)", i, d.Src, d.Dst, d.Amount)
		}
		if d.Src < 0 || d.Src >= g.N() || d.Dst < 0 || d.Dst >= g.N() {
			return 0, fmt.Errorf("fluid: demand %d out of range", i)
		}
	}

	eps := opt.Epsilon
	m := float64(len(net.cap))
	delta := (1 + eps) * math.Pow((1+eps)*m, -1/eps)
	length := make([]float64, len(net.cap))
	for e := range length {
		length[e] = delta / net.cap[e]
	}
	flow := make([]float64, len(net.cap))

	dualDone := func() bool {
		sum := 0.0
		for e := range length {
			sum += length[e] * net.cap[e]
		}
		return sum >= 1
	}

	// routed[k] accumulates commodity k's total routed flow across phases.
	routed := make([]float64, len(demands))
	for phases := 0; !dualDone() && phases < opt.MaxPhases; phases++ {
		for k, d := range demands {
			rem := d.Amount
			for rem > 1e-15 && !dualDone() {
				path, ok := net.shortestPath(d.Src, d.Dst, length)
				if !ok {
					return 0, fmt.Errorf("fluid: rack %d cannot reach %d", d.Src, d.Dst)
				}
				// Bottleneck-limited increment.
				f := rem
				for _, e := range path {
					if net.cap[e] < f {
						f = net.cap[e]
					}
				}
				for _, e := range path {
					flow[e] += f
					length[e] *= 1 + eps*f/net.cap[e]
				}
				rem -= f
				routed[k] += f
			}
		}
	}
	// Feasible scaling: scaling all flows by 1/overload respects every
	// capacity, so λ = min_k routed_k/d_k scaled the same way is feasible —
	// a strict lower bound on the optimum regardless of phase boundaries.
	overload := 0.0
	for e := range flow {
		if o := flow[e] / net.cap[e]; o > overload {
			overload = o
		}
	}
	if overload <= 0 {
		return 0, fmt.Errorf("fluid: no flow routed")
	}
	lam := math.Inf(1)
	for k, d := range demands {
		if r := routed[k] / d.Amount; r < lam {
			lam = r
		}
	}
	return lam / overload, nil
}

// network indexes the directed links with aggregated parallel capacity.
type network struct {
	n    int
	out  [][]arc // per switch: outgoing arcs
	cap  []float64
	head []int32 // arc → head switch
}

type arc struct {
	id int32
	to int32
}

func newNetwork(g *topology.Graph, linkCap float64) (*network, error) {
	net := &network{n: g.N(), out: make([][]arc, g.N())}
	for u := 0; u < g.N(); u++ {
		mult := map[int]int{}
		for _, v := range g.Neighbors(u) {
			mult[v]++
		}
		// Deterministic order.
		for v := 0; v < g.N(); v++ {
			k, ok := mult[v]
			if !ok {
				continue
			}
			id := int32(len(net.cap))
			net.cap = append(net.cap, float64(k)*linkCap)
			net.head = append(net.head, int32(v))
			net.out[u] = append(net.out[u], arc{id: id, to: int32(v)})
		}
	}
	if len(net.cap) == 0 {
		return nil, fmt.Errorf("fluid: fabric has no links")
	}
	return net, nil
}

// shortestPath runs Dijkstra under the given arc lengths, returning the arc
// ids of one shortest src→dst path.
func (n *network) shortestPath(src, dst int, length []float64) ([]int32, bool) {
	dist := make([]float64, n.n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	parentArc := make([]int32, n.n)
	for i := range parentArc {
		parentArc[i] = -1
	}
	parentNode := make([]int32, n.n)
	dist[src] = 0
	pq := &fheap{fitem{node: int32(src), dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(fitem)
		if it.dist > dist[it.node] {
			continue
		}
		if int(it.node) == dst {
			break
		}
		for _, a := range n.out[it.node] {
			nd := it.dist + length[a.id]
			if nd < dist[a.to] {
				dist[a.to] = nd
				parentArc[a.to] = a.id
				parentNode[a.to] = it.node
				heap.Push(pq, fitem{node: a.to, dist: nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil, false
	}
	var path []int32
	for v := int32(dst); int(v) != src; v = parentNode[v] {
		path = append(path, parentArc[v])
	}
	// Reverse into src→dst order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, true
}

type fitem struct {
	node int32
	dist float64
}

type fheap []fitem

func (h fheap) Len() int            { return len(h) }
func (h fheap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h fheap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *fheap) Push(x interface{}) { *h = append(*h, x.(fitem)) }
func (h *fheap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// MatrixDemands converts a rack-level workload matrix into commodities on
// fabric g (skipping zero entries).
func MatrixDemands(g *topology.Graph, w [][]float64) ([]Demand, error) {
	racks := g.Racks()
	if len(w) != len(racks) {
		return nil, fmt.Errorf("fluid: matrix has %d racks, fabric has %d", len(w), len(racks))
	}
	var out []Demand
	for i, row := range w {
		if len(row) != len(racks) {
			return nil, fmt.Errorf("fluid: ragged matrix row %d", i)
		}
		for j, v := range row {
			if v > 0 {
				out = append(out, Demand{Src: racks[i], Dst: racks[j], Amount: v})
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fluid: empty demand matrix")
	}
	return out, nil
}
