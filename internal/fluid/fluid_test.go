package fluid

import (
	"math"
	"math/rand"
	"testing"

	"spineless/internal/topology"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleLinkExact(t *testing.T) {
	g := topology.New("pair", 2, 4)
	if err := g.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	// One unit of capacity, demand 2 → λ = 0.5.
	lam, err := MaxConcurrentFlow(g, []Demand{{Src: 0, Dst: 1, Amount: 2}}, Options{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(lam, 0.5, 0.05) {
		t.Fatalf("λ = %v, want ≈0.5", lam)
	}
}

func TestParallelPathsAggregate(t *testing.T) {
	// Diamond: 0→{1,2}→3, all unit links. Max flow 0→3 is 2; demand 1 → λ≈2.
	g := topology.New("diamond", 4, 4)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := g.AddLink(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	lam, err := MaxConcurrentFlow(g, []Demand{{Src: 0, Dst: 3, Amount: 1}}, Options{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(lam, 2, 0.2) {
		t.Fatalf("λ = %v, want ≈2", lam)
	}
}

func TestTwoCommoditiesShareBottleneck(t *testing.T) {
	// Path 0-1-2: commodities 0→2 and 1→2 share link 1→2 (cap 1).
	g := topology.New("line", 3, 4)
	if err := g.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(1, 2); err != nil {
		t.Fatal(err)
	}
	lam, err := MaxConcurrentFlow(g, []Demand{
		{Src: 0, Dst: 2, Amount: 1},
		{Src: 1, Dst: 2, Amount: 1},
	}, Options{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(lam, 0.5, 0.05) {
		t.Fatalf("λ = %v, want ≈0.5", lam)
	}
}

func TestCapacityScalesLinearly(t *testing.T) {
	g := topology.New("pair", 2, 4)
	if err := g.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	d := []Demand{{Src: 0, Dst: 1, Amount: 1}}
	l1, err := MaxConcurrentFlow(g, d, Options{Epsilon: 0.05, LinkCapacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	l10, err := MaxConcurrentFlow(g, d, Options{Epsilon: 0.05, LinkCapacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(l10/l1, 10, 0.5) {
		t.Fatalf("capacity scaling: %v vs %v", l1, l10)
	}
}

func TestValidation(t *testing.T) {
	g := topology.New("pair", 2, 4)
	if err := g.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := MaxConcurrentFlow(g, nil, Options{}); err == nil {
		t.Fatal("empty demands accepted")
	}
	if _, err := MaxConcurrentFlow(g, []Demand{{Src: 0, Dst: 0, Amount: 1}}, Options{}); err == nil {
		t.Fatal("self demand accepted")
	}
	if _, err := MaxConcurrentFlow(g, []Demand{{Src: 0, Dst: 1, Amount: -1}}, Options{}); err == nil {
		t.Fatal("negative demand accepted")
	}
	if _, err := MaxConcurrentFlow(g, []Demand{{Src: 0, Dst: 9, Amount: 1}}, Options{}); err == nil {
		t.Fatal("out-of-range demand accepted")
	}
	// Disconnected.
	g2 := topology.New("disc", 2, 4)
	g2.SetServers(0, 1)
	g2.SetServers(1, 1)
	if _, err := MaxConcurrentFlow(g2, []Demand{{Src: 0, Dst: 1, Amount: 1}}, Options{}); err == nil {
		t.Fatal("unreachable demand accepted")
	}
}

func TestMatrixDemands(t *testing.T) {
	g, err := topology.DRing(topology.Uniform(5, 1, 8))
	if err != nil {
		t.Fatal(err)
	}
	w := [][]float64{
		{0, 1, 0, 0, 0},
		{0, 0, 2, 0, 0},
		{0, 0, 0, 0, 0},
		{0, 0, 0, 0, 0},
		{0, 0, 0, 0, 0},
	}
	ds, err := MatrixDemands(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("demands = %v", ds)
	}
	if _, err := MatrixDemands(g, w[:2]); err == nil {
		t.Fatal("wrong-size matrix accepted")
	}
	if _, err := MatrixDemands(g, [][]float64{{0}}); err == nil {
		t.Fatal("tiny matrix accepted")
	}
}

// TestIdealRRGBeatsDRingAtScale pins the §6.3 asymptotics in the *ideal*
// routing model: for a long ring the DRing's uniform-traffic throughput
// falls below the equipment-matched expander's, independent of transport
// and routing-scheme artifacts.
func TestIdealRRGBeatsDRingAtScale(t *testing.T) {
	spec := topology.Uniform(14, 2, 24) // long thin ring
	dr, err := topology.DRing(spec)
	if err != nil {
		t.Fatal(err)
	}
	degrees := make([]int, dr.N())
	for v := range degrees {
		degrees[v] = dr.NetworkDegree(v)
	}
	rrg, err := topology.RRG("rrg", degrees, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	rrg.Ports = dr.Ports
	for v := 0; v < dr.N(); v++ {
		rrg.SetServers(v, dr.ServerCount(v))
	}

	uniform := func(g *topology.Graph) float64 {
		t.Helper()
		n := g.N()
		var ds []Demand
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					ds = append(ds, Demand{Src: i, Dst: j, Amount: 1})
				}
			}
		}
		lam, err := MaxConcurrentFlow(g, ds, Options{Epsilon: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		return lam
	}
	ld, lr := uniform(dr), uniform(rrg)
	if lr <= ld {
		t.Fatalf("ideal throughput: RRG %v not above DRing %v on a 14-supernode ring", lr, ld)
	}
}

// TestIdealAtLeastRealized: the fluid optimum must dominate what max-min
// fair single-path routing achieves on the same demand structure — a
// cross-substrate consistency check between fluid and flowsim semantics.
func TestIdealUpperBoundSanity(t *testing.T) {
	g, err := topology.DRing(topology.Uniform(6, 2, 20))
	if err != nil {
		t.Fatal(err)
	}
	// One unit of demand between two distant racks; ideal λ must be at
	// least the single shortest path's capacity (1 link unit).
	lam, err := MaxConcurrentFlow(g, []Demand{{Src: 0, Dst: 6, Amount: 1}}, Options{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if lam < 1 {
		t.Fatalf("ideal λ %v below single-path capacity", lam)
	}
}
