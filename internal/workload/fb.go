package workload

import (
	"math"
	"math/rand"
)

// FBUniform synthesizes a rack-level matrix with the qualitative structure
// of the Facebook Hadoop cluster of Roy et al. [21]: demand is largely
// uniform across rack pairs, with modest multiplicative noise (each rack's
// intensity varies within roughly ±25%). This is the "FB uniform" workload
// of §5.2, rebuilt synthetically because the raw weights are proprietary.
func FBUniform(n int, rng *rand.Rand) *Matrix {
	m := NewMatrix("FB-uniform", n)
	out := lognormalIntensities(n, 0.12, rng)
	in := lognormalIntensities(n, 0.12, rng)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			m.W[i][j] = out[i] * in[j] * (0.9 + 0.2*rng.Float64())
		}
	}
	return m
}

// FBSkewed synthesizes a rack-level matrix with the qualitative structure
// of the Facebook front-end cluster of Roy et al. [21]: a minority of racks
// (cache leaders, web aggregators) source and sink a large share of the
// demand. Rack in/out intensities follow a Zipf-like law (s = 0.7), which
// yields strong row/column skew while keeping the hottest rack's share in
// the regime the paper's results imply for the real trace: above the
// leaf-spine ToR's uplink saturation point at 30% load but below the flat
// rewiring's — the window where flatness masks oversubscription (§3.1).
// This is the "FB skewed" workload of §5.2.
func FBSkewed(n int, rng *rand.Rand) *Matrix {
	m := NewMatrix("FB-skewed", n)
	out := zipfIntensities(n, 0.7, rng)
	in := zipfIntensities(n, 0.7, rng)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			m.W[i][j] = out[i] * in[j] * (0.8 + 0.4*rng.Float64())
		}
	}
	return m
}

// zipfIntensities assigns rank-based Zipf weights (rank r gets 1/r^s) to a
// random permutation of racks, so hot racks land anywhere in the fabric.
func zipfIntensities(n int, s float64, rng *rand.Rand) []float64 {
	perm := rng.Perm(n)
	w := make([]float64, n)
	for rank, rack := range perm {
		w[rack] = 1 / math.Pow(float64(rank+1), s)
	}
	return w
}

// lognormalIntensities draws mildly dispersed positive intensities with
// median 1 and the given log-std sigma.
func lognormalIntensities(n int, sigma float64, rng *rand.Rand) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = math.Exp(rng.NormFloat64() * sigma)
	}
	return w
}

// Skew reports the fraction of total demand carried by the busiest 10% of
// source racks. Uniform matrices score ≈0.1; heavily skewed ones score much
// higher. Used by tests to pin the qualitative difference between the two
// synthetic FB workloads.
func (m *Matrix) Skew() float64 {
	n := m.N()
	rows := make([]float64, n)
	total := 0.0
	for i := range m.W {
		for _, v := range m.W[i] {
			rows[i] += v
			total += v
		}
	}
	if total <= 0 {
		return 0
	}
	ordered := append([]float64(nil), rows...)
	// Descending sort.
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j] > ordered[j-1]; j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	top := (n + 9) / 10
	sum := 0.0
	for i := 0; i < top; i++ {
		sum += ordered[i]
	}
	return sum / total
}
