// Package workload generates the traffic demands of §5.2: uniform/A2A,
// rack-to-rack, the C-S model, and synthetic stand-ins for the Facebook
// rack-level traffic matrices of Roy et al. [21] (the raw traces are
// proprietary; see DESIGN.md for the substitution argument). It also
// provides the Pareto flow-size distribution and the spine-utilization
// scaling rule used to size experiments.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// Matrix is a rack-level traffic matrix: W[i][j] is the relative demand
// from rack i to rack j. Weights are non-negative and the diagonal is zero
// (intra-rack traffic never enters the fabric). Racks are indexed by
// position in the fabric's rack list, not by switch id.
type Matrix struct {
	Name string
	W    [][]float64
}

// NewMatrix allocates an all-zero n×n matrix.
func NewMatrix(name string, n int) *Matrix {
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	return &Matrix{Name: name, W: w}
}

// N returns the number of racks.
func (m *Matrix) N() int { return len(m.W) }

// Total returns the sum of all weights.
func (m *Matrix) Total() float64 {
	t := 0.0
	for _, row := range m.W {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// Validate checks shape, non-negativity, zero diagonal and non-zero total.
func (m *Matrix) Validate() error {
	n := len(m.W)
	for i, row := range m.W {
		if len(row) != n {
			return fmt.Errorf("workload %q: row %d has %d entries, want %d", m.Name, i, len(row), n)
		}
		for j, v := range row {
			if v < 0 {
				return fmt.Errorf("workload %q: negative weight at (%d,%d)", m.Name, i, j)
			}
			if i == j && v > 0 {
				return fmt.Errorf("workload %q: nonzero diagonal at %d", m.Name, i)
			}
		}
	}
	if m.Total() <= 0 {
		return fmt.Errorf("workload %q: zero total demand", m.Name)
	}
	return nil
}

// Uniform returns the uniform/A2A matrix over n racks: every ordered pair
// of distinct racks has weight 1 (§5.2 "Uniform/A2A").
func Uniform(n int) *Matrix {
	m := NewMatrix("A2A", n)
	for i := range m.W {
		for j := range m.W[i] {
			if i != j {
				m.W[i][j] = 1
			}
		}
	}
	return m
}

// RackToRack returns the R2R matrix: all demand flows from rack src to rack
// dst (§5.2 "Rack-to-rack").
func RackToRack(n, src, dst int) *Matrix {
	m := NewMatrix("R2R", n)
	m.W[src][dst] = 1
	return m
}

// SendingRacks returns the number of racks with outgoing or incoming
// demand. The paper scales R2R and C-S matrices down by
// sendingRacks/totalRacks (§6.1); this provides the numerator.
func (m *Matrix) SendingRacks() int {
	n := 0
	for i := range m.W {
		active := false
		for j := range m.W {
			if m.W[i][j] > 0 || m.W[j][i] > 0 {
				active = true
				break
			}
		}
		if active {
			n++
		}
	}
	return n
}

// Sampler draws rack pairs with probability proportional to their weight.
type Sampler struct {
	m   *Matrix
	cum []float64 // flattened cumulative weights
}

// NewSampler prepares weighted sampling over the matrix.
func NewSampler(m *Matrix) (*Sampler, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := m.N()
	cum := make([]float64, n*n)
	run := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			run += m.W[i][j]
			cum[i*n+j] = run
		}
	}
	return &Sampler{m: m, cum: cum}, nil
}

// Sample returns a rack pair (src, dst) drawn by weight.
func (s *Sampler) Sample(rng *rand.Rand) (src, dst int) {
	total := s.cum[len(s.cum)-1]
	x := rng.Float64() * total
	idx := sort.SearchFloat64s(s.cum, x)
	if idx >= len(s.cum) {
		idx = len(s.cum) - 1
	}
	n := s.m.N()
	return idx / n, idx % n
}
