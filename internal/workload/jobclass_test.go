package workload

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"spineless/internal/topology"
)

func classTestFabric(t *testing.T) *topology.Graph {
	t.Helper()
	g := topology.New("quad", 4, 6)
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			if err := g.AddLink(a, b); err != nil {
				t.Fatal(err)
			}
		}
	}
	for r := 0; r < 4; r++ {
		g.SetServers(r, 3)
	}
	return g
}

func TestGenerateClassedFlows(t *testing.T) {
	g := classTestFabric(t)
	cfg := ClassedConfig{Classes: ThreeTier(), Flows: 2000, WindowNS: 10e6}
	flows, classOf, err := GenerateClassedFlows(g, Uniform(4), cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != len(classOf) {
		t.Fatalf("%d flows but %d class attributions", len(flows), len(classOf))
	}
	// The realized count is Poisson(2000): ±5σ keeps flakiness negligible
	// while catching rate errors.
	if dev := math.Abs(float64(len(flows)) - 2000); dev > 5*math.Sqrt(2000) {
		t.Fatalf("Poisson process produced %d arrivals for expectation 2000", len(flows))
	}
	counts := make([]int, 3)
	for i, f := range flows {
		if i > 0 && flows[i-1].StartNS > f.StartNS {
			t.Fatalf("arrivals unsorted at %d", i)
		}
		if f.StartNS < 0 || f.StartNS >= cfg.WindowNS {
			t.Fatalf("arrival %d outside window: %d", i, f.StartNS)
		}
		counts[classOf[i]]++
	}
	for ci, n := range counts {
		if n == 0 {
			t.Fatalf("class %d never drawn in %d arrivals", ci, len(flows))
		}
	}
	// Latency tier dominates arrivals per its 0.60 share.
	if counts[2] <= counts[1] || counts[1] <= counts[0] {
		t.Fatalf("class counts %v do not follow shares 0.05/0.35/0.60", counts)
	}

	// Same seed, same workload — bit for bit.
	flows2, classOf2, err := GenerateClassedFlows(g, Uniform(4), cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(flows, flows2) || !reflect.DeepEqual(classOf, classOf2) {
		t.Fatal("classed generation is not deterministic from the seed")
	}
}

func TestGenerateClassedFlowsValidation(t *testing.T) {
	g := classTestFabric(t)
	bad := []Class{{Name: "a", Share: 0.7, Sizes: Fixed(1)}, {Name: "b", Share: 0.7, Sizes: Fixed(1)}}
	if _, _, err := GenerateClassedFlows(g, Uniform(4), ClassedConfig{Classes: bad, Flows: 10, WindowNS: 1e6}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("shares summing to 1.4 accepted")
	}
	if _, _, err := GenerateClassedFlows(g, Uniform(4), ClassedConfig{Classes: ThreeTier(), Flows: 0, WindowNS: 1e6}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("zero flows accepted")
	}
}

func TestClassAttribution(t *testing.T) {
	classes := []Class{
		{Name: "fast", Share: 0.5, Sizes: Fixed(1e3), SLAms: 1},
		{Name: "slow", Share: 0.5, Sizes: Fixed(1e5), SLAms: 10},
	}
	classOf := []uint8{0, 0, 0, 1, 1}
	fctNS := []int64{
		500_000,    // fast, meets 1ms
		2_000_000,  // fast, misses
		-1,         // fast, incomplete → SLA miss
		4_000_000,  // slow, meets 10ms
		12_000_000, // slow, misses
	}
	rows, err := ClassAttribution(classes, classOf, fctNS)
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := rows[0], rows[1]
	if fast.Flows != 3 || fast.Completed != 2 || fast.Incomplete != 1 {
		t.Fatalf("fast counts: %+v", fast)
	}
	if got, want := fast.SLAAttained, 1.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("fast attainment %.4f, want %.4f (incomplete flows are misses)", got, want)
	}
	if slow.Flows != 2 || slow.Completed != 2 {
		t.Fatalf("slow counts: %+v", slow)
	}
	if got, want := slow.SLAAttained, 0.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("slow attainment %.4f, want %.4f", got, want)
	}
	if slow.MedianMS < 4 || slow.P99MS < slow.MedianMS {
		t.Fatalf("slow percentiles: %+v", slow)
	}

	if _, err := ClassAttribution(classes, []uint8{0}, fctNS); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := ClassAttribution(classes, []uint8{5, 0, 0, 0, 0}, fctNS); err == nil {
		t.Fatal("out-of-range class id accepted")
	}
}
