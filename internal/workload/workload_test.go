package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"spineless/internal/topology"
)

func testRNG() *rand.Rand { return rand.New(rand.NewSource(11)) }

func testFabric(t *testing.T) *topology.Graph {
	t.Helper()
	g, err := topology.DRing(topology.Uniform(6, 2, 16))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestUniformMatrix(t *testing.T) {
	m := Uniform(5)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Total() != 20 {
		t.Fatalf("total = %v, want 20", m.Total())
	}
	if m.SendingRacks() != 5 {
		t.Fatalf("sending racks = %d, want 5", m.SendingRacks())
	}
}

func TestRackToRackMatrix(t *testing.T) {
	m := RackToRack(8, 2, 5)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.SendingRacks() != 2 {
		t.Fatalf("sending racks = %d, want 2", m.SendingRacks())
	}
	if ParticipationScale(m) != 0.25 {
		t.Fatalf("participation = %v, want 0.25", ParticipationScale(m))
	}
}

func TestMatrixValidateRejects(t *testing.T) {
	m := NewMatrix("bad", 3)
	if err := m.Validate(); err == nil {
		t.Fatal("zero matrix accepted")
	}
	m.W[0][0] = 1
	if err := m.Validate(); err == nil {
		t.Fatal("diagonal accepted")
	}
	m.W[0][0] = 0
	m.W[0][1] = -1
	if err := m.Validate(); err == nil {
		t.Fatal("negative accepted")
	}
}

func TestSamplerRespectsWeights(t *testing.T) {
	m := NewMatrix("w", 3)
	m.W[0][1] = 3
	m.W[1][2] = 1
	s, err := NewSampler(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := testRNG()
	counts := map[[2]int]int{}
	const draws = 20000
	for i := 0; i < draws; i++ {
		a, b := s.Sample(rng)
		counts[[2]int{a, b}]++
	}
	if len(counts) != 2 {
		t.Fatalf("sampled pairs = %v", counts)
	}
	frac := float64(counts[[2]int{0, 1}]) / draws
	if math.Abs(frac-0.75) > 0.02 {
		t.Fatalf("P(0→1) = %v, want ≈0.75", frac)
	}
}

func TestSamplerRejectsInvalid(t *testing.T) {
	if _, err := NewSampler(NewMatrix("zero", 2)); err == nil {
		t.Fatal("zero matrix sampler created")
	}
}

func TestFBWorkloadsSkewOrdering(t *testing.T) {
	rng := testRNG()
	uni := FBUniform(64, rng)
	skw := FBSkewed(64, rng)
	if err := uni.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := skw.Validate(); err != nil {
		t.Fatal(err)
	}
	su, ss := uni.Skew(), skw.Skew()
	// Uniform: top-10% racks carry ≈10% of demand. Skewed: far more.
	if su > 0.2 {
		t.Fatalf("FB-uniform skew = %v, want ≈0.1", su)
	}
	if ss < 0.22 {
		t.Fatalf("FB-skewed skew = %v, want substantial (>0.22)", ss)
	}
	if ss <= su {
		t.Fatalf("skewed (%v) not more skewed than uniform (%v)", ss, su)
	}
}

func TestParetoSizes(t *testing.T) {
	p := PaperFlowSizes()
	rng := testRNG()
	var sum float64
	lo, hi := int64(math.MaxInt64), int64(0)
	const n = 200000
	for i := 0; i < n; i++ {
		v := p.Sample(rng)
		if v < 1 {
			t.Fatalf("size %d < 1", v)
		}
		sum += float64(v)
		lo, hi = min(lo, v), max(hi, v)
	}
	mean := sum / n
	// With alpha=1.05 the capped empirical mean sits well below the nominal
	// 100KB but the same order of magnitude; the minimum is x_m ≈ 4.76KB.
	if mean < 10e3 || mean > 300e3 {
		t.Fatalf("empirical mean = %v, want within [10KB, 300KB]", mean)
	}
	wantXm := 100e3 * 0.05 / 1.05
	if float64(lo) < wantXm*0.95 || float64(lo) > wantXm*1.3 {
		t.Fatalf("min sample = %d, want ≈ x_m = %v", lo, wantXm)
	}
	if hi > 100e3*1e4 {
		t.Fatalf("cap violated: max = %d", hi)
	}
}

func TestParetoQuickPositiveAndCapped(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Pareto{MeanBytes: 50e3, Alpha: 1.05, Cap: 1e6}
		for i := 0; i < 100; i++ {
			v := p.Sample(rng)
			if v < 1 || v > 1e6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedSizes(t *testing.T) {
	f := Fixed(1500)
	if f.Sample(testRNG()) != 1500 || f.Mean() != 1500 {
		t.Fatal("fixed distribution broken")
	}
}

func TestCSModelPacking(t *testing.T) {
	g := testFabric(t) // 12 racks × 8 servers
	perRack := g.ServerCount(0)
	cs, err := CSModel(g, 2*perRack+1, perRack, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Clients) != 2*perRack+1 || len(cs.Servers) != perRack {
		t.Fatalf("sizes: C=%d S=%d", len(cs.Clients), len(cs.Servers))
	}
	// Fewest racks: 3 client racks (2 full + 1 partial), 1 server rack.
	if len(cs.ClientRacks) != 3 {
		t.Fatalf("client racks = %v, want 3 racks", cs.ClientRacks)
	}
	if len(cs.ServerRacks) != 1 {
		t.Fatalf("server racks = %v, want 1 rack", cs.ServerRacks)
	}
	// Disjointness.
	cr := map[int]bool{}
	for _, r := range cs.ClientRacks {
		cr[r] = true
	}
	for _, r := range cs.ServerRacks {
		if cr[r] {
			t.Fatalf("server rack %d overlaps client racks", r)
		}
	}
	// Every client host is in a client rack.
	for _, h := range cs.Clients {
		if !cr[g.RackOf(h)] {
			t.Fatalf("client %d outside client racks", h)
		}
	}
}

func TestCSModelErrors(t *testing.T) {
	g := testFabric(t)
	if _, err := CSModel(g, 0, 5, testRNG()); err == nil {
		t.Fatal("C=0 accepted")
	}
	if _, err := CSModel(g, g.Servers(), 1, testRNG()); err == nil {
		t.Fatal("no capacity left for servers, but accepted")
	}
}

func TestCSMatrixWeights(t *testing.T) {
	g := testFabric(t)
	cs, err := CSModel(g, 4, 6, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	m := CSMatrix(g, cs)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := m.Total(), float64(4*6); got != want {
		t.Fatalf("total weight = %v, want %v (clients × servers)", got, want)
	}
}

func TestCSPairs(t *testing.T) {
	g := testFabric(t)
	cs, err := CSModel(g, 4, 6, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	inC := map[int]bool{}
	for _, h := range cs.Clients {
		inC[h] = true
	}
	inS := map[int]bool{}
	for _, h := range cs.Servers {
		inS[h] = true
	}
	for _, p := range CSPairs(cs, 100, testRNG()) {
		if !inC[p[0]] || !inS[p[1]] {
			t.Fatalf("pair %v not client→server", p)
		}
	}
}

func TestGenerateFlows(t *testing.T) {
	g := testFabric(t)
	m := Uniform(len(g.Racks()))
	flows, err := GenerateFlows(g, m, GenConfig{
		Flows:    500,
		Sizes:    Fixed(1000),
		WindowNS: 1e9,
	}, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 500 {
		t.Fatalf("flows = %d, want 500", len(flows))
	}
	prev := int64(-1)
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Fatal("self flow")
		}
		if g.RackOf(f.Src) == g.RackOf(f.Dst) {
			t.Fatal("intra-rack flow from inter-rack matrix")
		}
		if f.StartNS < 0 || f.StartNS >= 1e9 {
			t.Fatalf("start %d outside window", f.StartNS)
		}
		if f.StartNS < prev {
			t.Fatal("flows not sorted by start time")
		}
		prev = f.StartNS
		if f.SizeBytes != 1000 {
			t.Fatalf("size = %d", f.SizeBytes)
		}
	}
}

func TestGenerateFlowsPlacement(t *testing.T) {
	g := testFabric(t)
	m := RackToRack(len(g.Racks()), 0, 1)
	perm := RandomPlacement(g, testRNG())
	flows, err := GenerateFlows(g, m, GenConfig{
		Flows:     200,
		Sizes:     Fixed(1),
		Placement: perm,
	}, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	// With random placement the rack pair (0,1) pattern must spread across
	// many racks.
	rackPairs := map[[2]int]bool{}
	for _, f := range flows {
		rackPairs[[2]int{g.RackOf(f.Src), g.RackOf(f.Dst)}] = true
	}
	if len(rackPairs) < 10 {
		t.Fatalf("placement did not spread traffic: %d rack pairs", len(rackPairs))
	}
}

func TestGenerateFlowsErrors(t *testing.T) {
	g := testFabric(t)
	if _, err := GenerateFlows(g, Uniform(3), GenConfig{Flows: 1, Sizes: Fixed(1)}, testRNG()); err == nil {
		t.Fatal("rack-count mismatch accepted")
	}
	m := Uniform(len(g.Racks()))
	if _, err := GenerateFlows(g, m, GenConfig{Flows: 1}, testRNG()); err == nil {
		t.Fatal("missing size distribution accepted")
	}
	if _, err := GenerateFlows(g, m, GenConfig{Flows: 1, Sizes: Fixed(1), Placement: []int{0}}, testRNG()); err == nil {
		t.Fatal("bad placement accepted")
	}
}

func TestSpineCapacityAndLoad(t *testing.T) {
	spec := topology.LeafSpineSpec{X: 48, Y: 16}
	capBps := SpineCapacityBps(spec, 10e9)
	if capBps != 64*16*10e9 {
		t.Fatalf("spine capacity = %v", capBps)
	}
	n := FlowCountForLoad(capBps, 0.3, 100e3, 0.01)
	// 30% of 10.24 Tbps = 384 GB/s; over 10ms = 3.84GB; /100KB = 38400.
	if n != 38400 {
		t.Fatalf("flow count = %d, want 38400", n)
	}
}

func TestRandomPlacementIsPermutation(t *testing.T) {
	g := testFabric(t)
	perm := RandomPlacement(g, testRNG())
	seen := make([]bool, len(perm))
	for _, v := range perm {
		if v < 0 || v >= len(perm) || seen[v] {
			t.Fatal("not a permutation")
		}
		seen[v] = true
	}
}
