package workload

import (
	"testing"
	"testing/quick"

	"spineless/internal/topology"
)

func burstFabric(t *testing.T) *topology.Graph {
	t.Helper()
	g, err := topology.DRing(topology.Uniform(8, 2, 24))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBurstVolumeConserved(t *testing.T) {
	g := burstFabric(t)
	spec := BurstSpec{BurstBytes: 10 << 20, Fanout: 5, FlowsPerDest: 3}
	flows, burstN, err := Burst(g, spec, 1e6, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if burstN != 15 {
		t.Fatalf("burstN = %d", burstN)
	}
	var total int64
	dsts := map[int]bool{}
	for _, f := range flows[:burstN] {
		total += f.SizeBytes
		dsts[g.RackOf(f.Dst)] = true
	}
	// Integer division may shave a few bytes; never exceed, never lose more
	// than one flow's worth.
	if total > spec.BurstBytes || total < spec.BurstBytes-int64(burstN) {
		t.Fatalf("burst total = %d, want ≈%d", total, spec.BurstBytes)
	}
	if len(dsts) != spec.Fanout {
		t.Fatalf("destination racks = %d, want %d", len(dsts), spec.Fanout)
	}
}

func TestBurstValidation(t *testing.T) {
	g := burstFabric(t)
	cases := []BurstSpec{
		{BurstBytes: 1, Fanout: 0, FlowsPerDest: 1},
		{BurstBytes: 1, Fanout: 99, FlowsPerDest: 1},
		{BurstBytes: 0, Fanout: 2, FlowsPerDest: 1},
		{BurstBytes: 1, Fanout: 2, FlowsPerDest: 0},
	}
	for i, spec := range cases {
		if _, _, err := Burst(g, spec, 1e6, testRNG()); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestBurstQuickInvariants(t *testing.T) {
	g := burstFabric(t)
	f := func(seed int64, fanRaw, fpdRaw uint8) bool {
		rng := testRNG()
		rng.Seed(seed)
		spec := BurstSpec{
			BurstBytes:      1 << 20,
			Fanout:          1 + int(fanRaw)%(len(g.Racks())-1),
			FlowsPerDest:    1 + int(fpdRaw%8),
			BackgroundFlows: int(fpdRaw % 5),
			BackgroundSize:  1000,
		}
		flows, burstN, err := Burst(g, spec, 1e6, rng)
		if err != nil {
			return false
		}
		if burstN != spec.Fanout*spec.FlowsPerDest {
			return false
		}
		if len(flows) != burstN+spec.BackgroundFlows {
			return false
		}
		srcRack := g.RackOf(flows[0].Src)
		for _, fl := range flows[:burstN] {
			if fl.StartNS != 0 || fl.SizeBytes < 1 ||
				g.RackOf(fl.Src) != srcRack || g.RackOf(fl.Dst) == srcRack {
				return false
			}
		}
		for _, fl := range flows[burstN:] {
			if fl.Src == fl.Dst || fl.StartNS < 0 || fl.StartNS >= 1e6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultBurst(t *testing.T) {
	spec := DefaultBurst()
	if spec.BurstBytes != 64<<20 || spec.Fanout != 8 {
		t.Fatalf("defaults changed: %+v", spec)
	}
}
