package workload

import (
	"fmt"
	"math/rand"

	"spineless/internal/topology"
)

// CSSets is an instance of the C-S model (§5.2): a set of client hosts and
// a set of server hosts, each packed into as few racks as possible, with
// server racks disjoint from client racks. Members are global server ids of
// the fabric.
type CSSets struct {
	Clients []int
	Servers []int
	// ClientRacks and ServerRacks are the switch ids used by each side.
	ClientRacks []int
	ServerRacks []int
}

// CSModel draws a C-S instance on fabric g: nClients hosts packed into the
// fewest racks (racks chosen uniformly at random), then nServers hosts
// packed into the fewest racks avoiding the client racks. It captures
// incast/outcast (1×1), rack-to-rack, skewed (|C| ≪ |S|) and uniform
// (|C| = |S| = n/2) patterns by varying the two sizes.
func CSModel(g *topology.Graph, nClients, nServers int, rng *rand.Rand) (CSSets, error) {
	if nClients <= 0 || nServers <= 0 {
		return CSSets{}, fmt.Errorf("workload: C-S sizes must be positive, got C=%d S=%d", nClients, nServers)
	}
	racks := g.Racks()
	order := rng.Perm(len(racks))

	var cs CSSets
	used := 0 // racks consumed from order
	var err error
	cs.Clients, cs.ClientRacks, used, err = packHosts(g, racks, order, 0, nClients)
	if err != nil {
		return CSSets{}, fmt.Errorf("workload: packing clients: %w", err)
	}
	cs.Servers, cs.ServerRacks, _, err = packHosts(g, racks, order, used, nServers)
	if err != nil {
		return CSSets{}, fmt.Errorf("workload: packing servers: %w", err)
	}
	return cs, nil
}

// packHosts fills racks (taken in the order given, starting at from) until
// want hosts are placed. It returns the host ids, racks used, and the next
// unconsumed position in order.
func packHosts(g *topology.Graph, racks []int, order []int, from, want int) (hosts, usedRacks []int, next int, err error) {
	i := from
	for want > 0 {
		if i >= len(order) {
			return nil, nil, i, fmt.Errorf("not enough rack capacity for %d more hosts", want)
		}
		rack := racks[order[i]]
		lo, hi := g.ServersOf(rack)
		take := min(want, hi-lo)
		for s := lo; s < lo+take; s++ {
			hosts = append(hosts, s)
		}
		usedRacks = append(usedRacks, rack)
		want -= take
		i++
	}
	return hosts, usedRacks, i, nil
}

// CSMatrix converts a C-S instance into a rack-level matrix on fabric g:
// every client rack sends to every server rack in proportion to the number
// of clients and servers hosted there.
func CSMatrix(g *topology.Graph, cs CSSets) *Matrix {
	racks := g.Racks()
	rackIdx := make(map[int]int, len(racks))
	for i, r := range racks {
		rackIdx[r] = i
	}
	clientCount := map[int]int{}
	for _, h := range cs.Clients {
		clientCount[g.RackOf(h)]++
	}
	serverCount := map[int]int{}
	for _, h := range cs.Servers {
		serverCount[g.RackOf(h)]++
	}
	m := NewMatrix(fmt.Sprintf("CS(%d,%d)", len(cs.Clients), len(cs.Servers)), len(racks))
	for cr, cn := range clientCount {
		for sr, sn := range serverCount {
			if cr == sr {
				continue
			}
			m.W[rackIdx[cr]][rackIdx[sr]] = float64(cn * sn)
		}
	}
	return m
}

// CSPairs draws flowCount (client, server) host pairs uniformly from the
// C-S sets — the endpoints of the long-running flows used for throughput
// measurement (§6.2).
func CSPairs(cs CSSets, flowCount int, rng *rand.Rand) [][2]int {
	out := make([][2]int, flowCount)
	for i := range out {
		out[i] = [2]int{
			cs.Clients[rng.Intn(len(cs.Clients))],
			cs.Servers[rng.Intn(len(cs.Servers))],
		}
	}
	return out
}
