package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"spineless/internal/topology"
)

// Flow is one transfer between two hosts.
type Flow struct {
	ID        uint64
	Src, Dst  int   // global server ids
	SizeBytes int64 // total bytes to deliver
	StartNS   int64 // start time in simulation nanoseconds
}

// SizeDist draws flow sizes in bytes.
type SizeDist interface {
	Sample(rng *rand.Rand) int64
	Mean() float64
}

// Pareto is the §5.2 flow-size distribution: a Pareto with the given mean
// and shape alpha (the paper uses mean 100 KB, alpha 1.05, mimicking the
// irregular flow sizes of [6]). Samples are capped at Cap bytes to keep the
// heavy tail simulable; Cap defaults to 10000× the mean.
type Pareto struct {
	MeanBytes float64
	Alpha     float64
	Cap       int64
}

// PaperFlowSizes is the §5.2 distribution: Pareto, mean 100 KB, alpha 1.05.
func PaperFlowSizes() Pareto { return Pareto{MeanBytes: 100e3, Alpha: 1.05} }

// Sample implements SizeDist.
func (p Pareto) Sample(rng *rand.Rand) int64 {
	xm := p.MeanBytes * (p.Alpha - 1) / p.Alpha
	u := rng.Float64()
	for u <= 0 {
		u = rng.Float64()
	}
	v := xm / math.Pow(u, 1/p.Alpha)
	capBytes := p.Cap
	if capBytes == 0 {
		capBytes = int64(p.MeanBytes * 1e4)
	}
	if v > float64(capBytes) {
		v = float64(capBytes)
	}
	if v < 1 {
		v = 1
	}
	return int64(v)
}

// Mean implements SizeDist. It returns the analytic mean of the *capped*
// distribution, so that load calculations (flows-per-window for a target
// utilization) match what Sample actually produces. With alpha=1.05 the cap
// matters: the capped mean is roughly half the nominal MeanBytes.
func (p Pareto) Mean() float64 {
	xm := p.MeanBytes * (p.Alpha - 1) / p.Alpha
	c := float64(p.Cap)
	if p.Cap == 0 {
		c = p.MeanBytes * 1e4
	}
	if c <= xm {
		return c
	}
	a := p.Alpha
	// E[min(X, c)] = (a·xm^a/(a−1))·(xm^(1−a) − c^(1−a)) + c·(xm/c)^a.
	body := a * math.Pow(xm, a) / (a - 1) * (math.Pow(xm, 1-a) - math.Pow(c, 1-a))
	tail := c * math.Pow(xm/c, a)
	return body + tail
}

// Fixed draws a constant flow size.
type Fixed int64

// Sample implements SizeDist.
func (f Fixed) Sample(*rand.Rand) int64 { return int64(f) }

// Mean implements SizeDist.
func (f Fixed) Mean() float64 { return float64(f) }

// GenConfig controls flow generation from a rack-level matrix.
type GenConfig struct {
	Flows     int      // number of flows to draw
	Sizes     SizeDist // flow size distribution
	WindowNS  int64    // start times are uniform over [0, WindowNS)
	Placement []int    // optional server permutation (random placement); nil = identity
}

// GenerateFlows draws flows on fabric g according to rack-level matrix m:
// rack pairs by weight, the endpoint host uniform within each rack, sizes
// from cfg.Sizes, and start times uniform over the window (§5.2). A non-nil
// Placement permutation relocates every host, producing the paper's
// "Random Placement" variants.
func GenerateFlows(g *topology.Graph, m *Matrix, cfg GenConfig, rng *rand.Rand) ([]Flow, error) {
	racks := g.Racks()
	if m.N() != len(racks) {
		return nil, fmt.Errorf("workload: matrix has %d racks, fabric has %d", m.N(), len(racks))
	}
	if cfg.Placement != nil && len(cfg.Placement) != g.Servers() {
		return nil, fmt.Errorf("workload: placement has %d entries, fabric has %d servers",
			len(cfg.Placement), g.Servers())
	}
	if cfg.Sizes == nil {
		return nil, fmt.Errorf("workload: no size distribution")
	}
	s, err := NewSampler(m)
	if err != nil {
		return nil, err
	}
	flows := make([]Flow, 0, cfg.Flows)
	for i := 0; i < cfg.Flows; i++ {
		si, di := s.Sample(rng)
		src := hostIn(g, racks[si], rng)
		dst := hostIn(g, racks[di], rng)
		if cfg.Placement != nil {
			src, dst = cfg.Placement[src], cfg.Placement[dst]
		}
		if src == dst {
			continue // relocated onto itself; negligible probability
		}
		start := int64(0)
		if cfg.WindowNS > 0 {
			start = rng.Int63n(cfg.WindowNS)
		}
		flows = append(flows, Flow{
			ID:        uint64(i),
			Src:       src,
			Dst:       dst,
			SizeBytes: cfg.Sizes.Sample(rng),
			StartNS:   start,
		})
	}
	// Start-time ties are common (WindowNS == 0 puts every flow at t=0);
	// break them on flow ID so simulator admission order is a total order.
	sort.SliceStable(flows, func(a, b int) bool {
		if flows[a].StartNS != flows[b].StartNS {
			return flows[a].StartNS < flows[b].StartNS
		}
		return flows[a].ID < flows[b].ID
	})
	return flows, nil
}

func hostIn(g *topology.Graph, rack int, rng *rand.Rand) int {
	lo, hi := g.ServersOf(rack)
	return lo + rng.Intn(hi-lo)
}

// RandomPlacement returns a uniform permutation of the fabric's servers,
// used for the FB skewed/uniform (RP) workloads (§5.2).
func RandomPlacement(g *topology.Graph, rng *rand.Rand) []int {
	return rng.Perm(g.Servers())
}

// SpineCapacityBps returns the aggregate leaf→spine capacity of a
// leaf-spine fabric in bits/second: leaves × y × linkRate. The paper scales
// every TM so this layer runs at 30% utilization (§6.1).
func SpineCapacityBps(spec topology.LeafSpineSpec, linkRateBps float64) float64 {
	return float64(spec.Leaves()) * float64(spec.Y) * linkRateBps
}

// FlowCountForLoad returns how many flows of the given mean size must
// arrive over a window so that offered load equals util × capacityBps.
func FlowCountForLoad(capacityBps, util, meanFlowBytes, windowSec float64) int {
	bytesPerSec := util * capacityBps / 8
	return int(bytesPerSec * windowSec / meanFlowBytes)
}

// ParticipationScale returns the §6.1 extra scale-down applied to patterns
// where only a few racks send: sendingRacks / totalRacks.
func ParticipationScale(m *Matrix) float64 {
	return float64(m.SendingRacks()) / float64(m.N())
}
