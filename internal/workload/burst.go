package workload

import (
	"fmt"
	"math/rand"

	"spineless/internal/topology"
)

// BurstSpec describes a §3 microburst: one rack suddenly has a lot of
// traffic to send in a short period while the rest of the fabric idles
// (a few background flows keep the network warm). The paper argues flat
// networks are "especially valuable for micro bursts ... traffic is
// well-multiplexed at the network links (very few racks are bursting at any
// given point)": all of a ToR's network links can carry its local burst.
type BurstSpec struct {
	// BurstBytes is the total volume the bursting rack must move.
	BurstBytes int64
	// Fanout is the number of distinct destination racks.
	Fanout int
	// FlowsPerDest splits each destination's share into parallel flows.
	FlowsPerDest int
	// BackgroundFlows adds light uniform traffic (0 for none).
	BackgroundFlows int
	// BackgroundSize is the size of each background flow.
	BackgroundSize int64
}

// DefaultBurst is a 64 MB burst fanned out to 8 racks.
func DefaultBurst() BurstSpec {
	return BurstSpec{
		BurstBytes:      64 << 20,
		Fanout:          8,
		FlowsPerDest:    4,
		BackgroundFlows: 64,
		BackgroundSize:  64 << 10,
	}
}

// Burst generates the flow set: the bursting rack is chosen at random, its
// servers share the burst evenly, destinations are random distinct racks,
// and all burst flows start at t=0 (that is what makes it a burst).
// Background flows start uniformly over windowNS. The returned index is the
// number of burst flows — flows[:burstN] are the burst, the rest are
// background.
func Burst(g *topology.Graph, spec BurstSpec, windowNS int64, rng *rand.Rand) (flows []Flow, burstN int, err error) {
	racks := g.Racks()
	if spec.Fanout < 1 || spec.Fanout >= len(racks) {
		return nil, 0, fmt.Errorf("workload: burst fanout %d infeasible with %d racks", spec.Fanout, len(racks))
	}
	if spec.BurstBytes <= 0 || spec.FlowsPerDest < 1 {
		return nil, 0, fmt.Errorf("workload: bad burst spec %+v", spec)
	}
	order := rng.Perm(len(racks))
	src := racks[order[0]]
	dsts := make([]int, spec.Fanout)
	for i := range dsts {
		dsts[i] = racks[order[1+i]]
	}
	srcLo, srcHi := g.ServersOf(src)
	if srcHi == srcLo {
		return nil, 0, fmt.Errorf("workload: burst rack %d has no servers", src)
	}

	total := spec.Fanout * spec.FlowsPerDest
	per := spec.BurstBytes / int64(total)
	if per < 1 {
		per = 1
	}
	id := uint64(0)
	for _, d := range dsts {
		dLo, dHi := g.ServersOf(d)
		for f := 0; f < spec.FlowsPerDest; f++ {
			flows = append(flows, Flow{
				ID:        id,
				Src:       srcLo + int(id)%(srcHi-srcLo),
				Dst:       dLo + int(id)%(dHi-dLo),
				SizeBytes: per,
				StartNS:   0,
			})
			id++
		}
	}
	burstN = len(flows)

	for b := 0; b < spec.BackgroundFlows; b++ {
		si := racks[rng.Intn(len(racks))]
		di := racks[rng.Intn(len(racks))]
		for di == si {
			di = racks[rng.Intn(len(racks))]
		}
		flows = append(flows, Flow{
			ID:        id,
			Src:       hostIn(g, si, rng),
			Dst:       hostIn(g, di, rng),
			SizeBytes: spec.BackgroundSize,
			StartNS:   rng.Int63n(max(windowNS, 1)),
		})
		id++
	}
	return flows, burstN, nil
}
