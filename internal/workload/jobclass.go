package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"spineless/internal/metrics"
	"spineless/internal/topology"
)

// Class is one tier of the job-class workload mix: a named flow population
// with its own size distribution, share of the arrival process, and a
// flow-completion-time SLA target. The mix models the three traffic tiers
// a flat fabric multiplexes onto one layer — which is exactly why the
// paper's operators need per-class telemetry to tell them apart.
type Class struct {
	Name string
	// Share is the class's fraction of flow arrivals; a mix's shares must
	// sum to 1 (±1e-9).
	Share float64
	// Sizes draws the class's flow sizes.
	Sizes SizeDist
	// SLAms is the class's FCT target in milliseconds; attribution reports
	// the fraction of completed flows that met it.
	SLAms float64
}

// ThreeTier is the default mix: a few large training transfers with a lax
// deadline, a middle batch tier, and many small latency-sensitive RPCs
// with a tight one.
func ThreeTier() []Class {
	return []Class{
		{Name: "training", Share: 0.05, Sizes: Pareto{MeanBytes: 400e3, Alpha: 1.5, Cap: 2e6}, SLAms: 20},
		{Name: "batch", Share: 0.35, Sizes: Pareto{MeanBytes: 60e3, Alpha: 1.2, Cap: 600e3}, SLAms: 5},
		{Name: "latency", Share: 0.60, Sizes: Fixed(4e3), SLAms: 1},
	}
}

// ClassMean returns the mix's mean flow size in bytes (Σ share·mean), the
// number load calculations need in place of a single distribution's Mean.
func ClassMean(classes []Class) float64 {
	var m float64
	for _, c := range classes {
		m += c.Share * c.Sizes.Mean()
	}
	return m
}

func validateClasses(classes []Class) error {
	if len(classes) == 0 {
		return fmt.Errorf("workload: empty class mix")
	}
	if len(classes) > 256 {
		return fmt.Errorf("workload: %d classes exceed the uint8 class-id space", len(classes))
	}
	var sum float64
	for i, c := range classes {
		if c.Share < 0 {
			return fmt.Errorf("workload: class %q has negative share", c.Name)
		}
		if c.Sizes == nil {
			return fmt.Errorf("workload: class %d (%q) has no size distribution", i, c.Name)
		}
		sum += c.Share
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("workload: class shares sum to %g, want 1", sum)
	}
	return nil
}

// ClassedConfig controls job-class flow generation.
type ClassedConfig struct {
	Classes []Class
	// Flows is the expected arrival count over the window; the realized
	// count is Poisson-distributed around it.
	Flows int
	// WindowNS is the arrival window. Unlike GenConfig's uniform starts,
	// arrivals form a Poisson process: exponential inter-arrival gaps at
	// rate Flows/WindowNS, so short-timescale burstiness is realistic and
	// the telemetry series have texture.
	WindowNS int64
	// Placement optionally relocates every host (random placement).
	Placement []int
}

// GenerateClassedFlows draws a Poisson-arrival job-class workload on
// fabric g under rack matrix m. Per the superposition property, one merged
// arrival process at the total rate is drawn and each arrival picks its
// class by share, which is equivalent to independent per-class Poisson
// processes. Returns the flows (sorted by start time, IDs in arrival
// order) and the parallel flow→class-index attribution slice consumed by
// telemetry and ClassAttribution.
func GenerateClassedFlows(g *topology.Graph, m *Matrix, cfg ClassedConfig, rng *rand.Rand) ([]Flow, []uint8, error) {
	if err := validateClasses(cfg.Classes); err != nil {
		return nil, nil, err
	}
	if cfg.Flows <= 0 || cfg.WindowNS <= 0 {
		return nil, nil, fmt.Errorf("workload: classed generation needs positive Flows and WindowNS")
	}
	racks := g.Racks()
	if m.N() != len(racks) {
		return nil, nil, fmt.Errorf("workload: matrix has %d racks, fabric has %d", m.N(), len(racks))
	}
	if cfg.Placement != nil && len(cfg.Placement) != g.Servers() {
		return nil, nil, fmt.Errorf("workload: placement has %d entries, fabric has %d servers",
			len(cfg.Placement), g.Servers())
	}
	s, err := NewSampler(m)
	if err != nil {
		return nil, nil, err
	}

	meanGapNS := float64(cfg.WindowNS) / float64(cfg.Flows)
	flows := make([]Flow, 0, cfg.Flows+cfg.Flows/4)
	classOf := make([]uint8, 0, cap(flows))
	t := 0.0
	for id := uint64(0); ; id++ {
		t += rng.ExpFloat64() * meanGapNS
		start := int64(t)
		if start >= cfg.WindowNS {
			break
		}
		ci := pickClass(cfg.Classes, rng)
		si, di := s.Sample(rng)
		src := hostIn(g, racks[si], rng)
		dst := hostIn(g, racks[di], rng)
		if cfg.Placement != nil {
			src, dst = cfg.Placement[src], cfg.Placement[dst]
		}
		if src == dst {
			continue // relocated onto itself; negligible probability
		}
		flows = append(flows, Flow{
			ID:        id,
			Src:       src,
			Dst:       dst,
			SizeBytes: cfg.Classes[ci].Sizes.Sample(rng),
			StartNS:   start,
		})
		classOf = append(classOf, uint8(ci))
	}
	// Arrival order already sorts by start; truncation to int64 ns can tie,
	// so pin the total order on ID like GenerateFlows. classOf rides along.
	idx := make([]int, len(flows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if flows[idx[a]].StartNS != flows[idx[b]].StartNS {
			return flows[idx[a]].StartNS < flows[idx[b]].StartNS
		}
		return flows[idx[a]].ID < flows[idx[b]].ID
	})
	outF := make([]Flow, len(flows))
	outC := make([]uint8, len(flows))
	for i, j := range idx {
		outF[i] = flows[j]
		outC[i] = classOf[j]
	}
	return outF, outC, nil
}

func pickClass(classes []Class, rng *rand.Rand) int {
	u := rng.Float64()
	acc := 0.0
	for i, c := range classes {
		acc += c.Share
		if u < acc {
			return i
		}
	}
	return len(classes) - 1 // float round-off at the top of the CDF
}

// ClassFCT is one class's completion and SLA outcome.
type ClassFCT struct {
	Class       string  `json:"class"`
	SLAms       float64 `json:"sla_ms"`
	Flows       int     `json:"flows"`
	Completed   int     `json:"completed"`
	Incomplete  int     `json:"incomplete"`
	MedianMS    float64 `json:"median_ms"`
	P99MS       float64 `json:"p99_ms"`
	SLAAttained float64 `json:"sla_attained"` // completed flows meeting SLAms, as a fraction of all class flows
}

// ClassAttribution splits a run's per-flow completion times (fctNS[i] < 0
// marks an unfinished flow) by the classOf attribution from
// GenerateClassedFlows and scores each class against its SLA. Incomplete
// flows count as SLA misses.
func ClassAttribution(classes []Class, classOf []uint8, fctNS []int64) ([]ClassFCT, error) {
	if len(classOf) != len(fctNS) {
		return nil, fmt.Errorf("workload: classOf covers %d of %d flows", len(classOf), len(fctNS))
	}
	out := make([]ClassFCT, len(classes))
	byClass := make([][]float64, len(classes))
	met := make([]int, len(classes))
	for i, c := range classOf {
		if int(c) >= len(classes) {
			return nil, fmt.Errorf("workload: flow %d has class %d, mix has %d classes", i, c, len(classes))
		}
		out[c].Flows++
		if fctNS[i] < 0 {
			out[c].Incomplete++
			continue
		}
		ms := float64(fctNS[i]) / 1e6
		byClass[c] = append(byClass[c], ms)
		if ms <= classes[c].SLAms {
			met[c]++
		}
	}
	for ci, c := range classes {
		out[ci].Class = c.Name
		out[ci].SLAms = c.SLAms
		out[ci].Completed = len(byClass[ci])
		if len(byClass[ci]) > 0 {
			out[ci].MedianMS = metrics.Percentile(byClass[ci], 50)
			out[ci].P99MS = metrics.Percentile(byClass[ci], 99)
		}
		if out[ci].Flows > 0 {
			out[ci].SLAAttained = float64(met[ci]) / float64(out[ci].Flows)
		}
	}
	return out, nil
}

// ClassTable renders a per-class SLA report.
func ClassTable(rows []ClassFCT) string {
	var t metrics.Table
	t.AddRow("class", "flows", "completed", "median ms", "p99 ms", "SLA ms", "attained")
	for _, r := range rows {
		t.AddRow(r.Class,
			fmt.Sprintf("%d", r.Flows),
			fmt.Sprintf("%d", r.Completed),
			fmt.Sprintf("%.3f", r.MedianMS),
			fmt.Sprintf("%.3f", r.P99MS),
			fmt.Sprintf("%.2f", r.SLAms),
			fmt.Sprintf("%.1f%%", r.SLAAttained*100),
		)
	}
	return t.String()
}
