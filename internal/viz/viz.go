// Package viz renders the experiment artifacts as standalone SVG files so
// the regenerated figures look like figures: grouped bar charts (Figure 4),
// heatmaps (Figure 5) and line charts (Figure 6). Pure stdlib, pure text;
// every renderer is deterministic.
package viz

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Palette is a colorblind-safe categorical cycle.
var Palette = []string{
	"#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377", "#bbbbbb",
}

const (
	fontFamily = "Helvetica, Arial, sans-serif"
	axisColor  = "#444444"
)

type svgBuilder struct {
	strings.Builder
	w, h int
}

func newSVG(w, h int) *svgBuilder {
	b := &svgBuilder{w: w, h: h}
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	return b
}

func (b *svgBuilder) text(x, y float64, size int, anchor, s string) {
	fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family="%s" font-size="%d" fill="%s" text-anchor="%s">%s</text>`+"\n",
		x, y, fontFamily, size, axisColor, anchor, escape(s))
}

func (b *svgBuilder) line(x1, y1, x2, y2 float64, color string, width float64) {
	fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n",
		x1, y1, x2, y2, color, width)
}

func (b *svgBuilder) rect(x, y, w, h float64, fill string) {
	fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n", x, y, w, h, fill)
}

func (b *svgBuilder) close() string {
	b.WriteString("</svg>\n")
	return b.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// BarGroup is one x-axis position of a grouped bar chart: a label plus one
// value per series.
type BarGroup struct {
	Label  string
	Values []float64
}

// GroupedBars renders a Figure 4-style grouped bar chart. Series names the
// legend entries; every group must carry len(series) values.
func GroupedBars(title, yLabel string, series []string, groups []BarGroup) (string, error) {
	if len(series) == 0 || len(groups) == 0 {
		return "", fmt.Errorf("viz: empty chart")
	}
	maxV := 0.0
	for _, g := range groups {
		if len(g.Values) != len(series) {
			return "", fmt.Errorf("viz: group %q has %d values for %d series", g.Label, len(g.Values), len(series))
		}
		for _, v := range g.Values {
			if math.IsNaN(v) || v < 0 {
				return "", fmt.Errorf("viz: group %q has invalid value", g.Label)
			}
			maxV = math.Max(maxV, v)
		}
	}
	if maxV <= 0 {
		maxV = 1
	}

	const (
		mL, mR, mT, mB = 64.0, 16.0, 40.0, 72.0
		plotH          = 280.0
	)
	groupW := math.Max(30*float64(len(series)+1), 90)
	plotW := groupW * float64(len(groups))
	W := int(mL + plotW + mR)
	H := int(mT + plotH + mB)
	b := newSVG(W, H)
	b.text(float64(W)/2, 22, 15, "middle", title)

	// Y axis with 5 ticks.
	for i := 0; i <= 5; i++ {
		v := maxV * float64(i) / 5
		y := mT + plotH - plotH*float64(i)/5
		b.line(mL, y, mL+plotW, y, "#dddddd", 1)
		b.text(mL-6, y+4, 11, "end", trimFloat(v))
	}
	b.text(14, mT+plotH/2, 12, "middle",
		"") // y-label drawn rotated below
	fmt.Fprintf(b, `<text x="14" y="%.1f" font-family="%s" font-size="12" fill="%s" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
		mT+plotH/2, fontFamily, axisColor, mT+plotH/2, escape(yLabel))

	barW := (groupW - 18) / float64(len(series))
	for gi, g := range groups {
		x0 := mL + groupW*float64(gi) + 9
		for si, v := range g.Values {
			h := plotH * v / maxV
			b.rect(x0+barW*float64(si), mT+plotH-h, barW-2, h, Palette[si%len(Palette)])
		}
		b.text(x0+(groupW-18)/2, mT+plotH+16, 11, "middle", g.Label)
	}
	b.line(mL, mT+plotH, mL+plotW, mT+plotH, axisColor, 1.5)

	// Legend row.
	lx := mL
	ly := mT + plotH + 40
	for si, s := range series {
		b.rect(lx, ly-10, 12, 12, Palette[si%len(Palette)])
		b.text(lx+16, ly, 11, "start", s)
		lx += 16 + 7*float64(len(s)) + 24
	}
	return b.close(), nil
}

// Series is one line of a line chart.
type Series struct {
	Name string
	X, Y []float64
}

// Lines renders a Figure 6-style line chart.
func Lines(title, xLabel, yLabel string, series []Series) (string, error) {
	if len(series) == 0 {
		return "", fmt.Errorf("viz: empty chart")
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1)
	for _, s := range series {
		if len(s.X) != len(s.Y) || len(s.X) == 0 {
			return "", fmt.Errorf("viz: series %q malformed", s.Name)
		}
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if maxX <= minX {
		maxX = minX + 1
	}
	if maxY <= minY {
		maxY = minY + 1
	}
	maxY *= 1.05

	const (
		mL, mR, mT, mB = 64.0, 20.0, 40.0, 56.0
		plotW, plotH   = 420.0, 280.0
	)
	W, H := int(mL+plotW+mR), int(mT+plotH+mB)
	b := newSVG(W, H)
	b.text(float64(W)/2, 22, 15, "middle", title)
	px := func(x float64) float64 { return mL + plotW*(x-minX)/(maxX-minX) }
	py := func(y float64) float64 { return mT + plotH - plotH*(y-minY)/(maxY-minY) }

	for i := 0; i <= 5; i++ {
		v := minY + (maxY-minY)*float64(i)/5
		b.line(mL, py(v), mL+plotW, py(v), "#dddddd", 1)
		b.text(mL-6, py(v)+4, 11, "end", trimFloat(v))
	}
	for i := 0; i <= 4; i++ {
		v := minX + (maxX-minX)*float64(i)/4
		b.text(px(v), mT+plotH+18, 11, "middle", trimFloat(v))
	}
	b.line(mL, mT+plotH, mL+plotW, mT+plotH, axisColor, 1.5)
	b.line(mL, mT, mL, mT+plotH, axisColor, 1.5)
	b.text(mL+plotW/2, float64(H)-22, 12, "middle", xLabel)
	fmt.Fprintf(b, `<text x="16" y="%.1f" font-family="%s" font-size="12" fill="%s" text-anchor="middle" transform="rotate(-90 16 %.1f)">%s</text>`+"\n",
		mT+plotH/2, fontFamily, axisColor, mT+plotH/2, escape(yLabel))

	for si, s := range series {
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), Palette[si%len(Palette)])
		for i := range s.X {
			fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n",
				px(s.X[i]), py(s.Y[i]), Palette[si%len(Palette)])
		}
		b.text(mL+8, mT+14+14*float64(si), 11, "start", s.Name)
		b.rect(mL+plotW-90, mT+6+14*float64(si), 10, 3, Palette[si%len(Palette)])
		b.text(mL+plotW-76, mT+12+14*float64(si), 11, "start", s.Name)
	}
	return b.close(), nil
}

// HeatmapSVG renders a Figure 5-style heatmap: cells colored on a diverging
// scale centered at 1.0 (blue < 1 < red), with tick labels.
func HeatmapSVG(title, xLabel, yLabel string, xTicks, yTicks []int, cells [][]float64) (string, error) {
	if len(yTicks) == 0 || len(xTicks) == 0 || len(cells) != len(yTicks) {
		return "", fmt.Errorf("viz: malformed heatmap")
	}
	const (
		mL, mR, mT, mB = 64.0, 90.0, 40.0, 56.0
		cell           = 36.0
	)
	plotW, plotH := cell*float64(len(xTicks)), cell*float64(len(yTicks))
	W, H := int(mL+plotW+mR), int(mT+plotH+mB)
	b := newSVG(W, H)
	b.text(float64(W)/2, 22, 14, "middle", title)

	// Scale bounds from data (symmetric around 1 in log space).
	maxDev := 1.0
	for _, row := range cells {
		if len(row) != len(xTicks) {
			return "", fmt.Errorf("viz: ragged heatmap row")
		}
		for _, v := range row {
			if !math.IsNaN(v) && v > 0 {
				maxDev = math.Max(maxDev, math.Max(v, 1/v))
			}
		}
	}
	for yi, row := range cells {
		// yTicks ascend upward like the paper's panels.
		y := mT + plotH - cell*float64(yi+1)
		for xi, v := range row {
			b.rect(mL+cell*float64(xi), y, cell-1, cell-1, divergeColor(v, maxDev))
			if !math.IsNaN(v) {
				b.text(mL+cell*float64(xi)+cell/2, y+cell/2+4, 10, "middle", fmt.Sprintf("%.2f", v))
			}
		}
		b.text(mL-6, y+cell/2+4, 11, "end", fmt.Sprintf("%d", yTicks[yi]))
	}
	for xi, t := range xTicks {
		b.text(mL+cell*float64(xi)+cell/2, mT+plotH+16, 11, "middle", fmt.Sprintf("%d", t))
	}
	b.text(mL+plotW/2, float64(H)-20, 12, "middle", xLabel)
	fmt.Fprintf(b, `<text x="16" y="%.1f" font-family="%s" font-size="12" fill="%s" text-anchor="middle" transform="rotate(-90 16 %.1f)">%s</text>`+"\n",
		mT+plotH/2, fontFamily, axisColor, mT+plotH/2, escape(yLabel))

	// Color-scale legend.
	lx := mL + plotW + 16
	for i := 0; i <= 8; i++ {
		frac := float64(i) / 8
		v := math.Pow(maxDev, 2*frac-1) // from 1/maxDev to maxDev
		b.rect(lx, mT+plotH-plotH*frac, 14, plotH/8+1, divergeColor(v, maxDev))
		if i%2 == 0 {
			b.text(lx+18, mT+plotH-plotH*frac+4, 10, "start", fmt.Sprintf("%.2f", v))
		}
	}
	return b.close(), nil
}

// divergeColor maps v onto a blue-white-red scale centered at 1 (log).
func divergeColor(v, maxDev float64) string {
	if math.IsNaN(v) || v <= 0 {
		return "#eeeeee"
	}
	t := math.Log(v) / math.Log(maxDev) // [-1, 1]
	t = math.Max(-1, math.Min(1, t))
	// Blend white→red for t>0, white→blue for t<0.
	blend := func(a, b int, f float64) int { return int(float64(a) + (float64(b)-float64(a))*f) }
	var r, g, bl int
	if t >= 0 {
		r, g, bl = blend(255, 202, t), blend(255, 58, t), blend(255, 70, t)
	} else {
		r, g, bl = blend(255, 60, -t), blend(255, 110, -t), blend(255, 190, -t)
	}
	return fmt.Sprintf("#%02x%02x%02x", r, g, bl)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// SortedKeys is a small helper for deterministic map iteration in callers.
func SortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
