package viz

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

// wellFormed checks that the SVG parses as XML.
func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, svg[:min(len(svg), 400)])
		}
	}
}

func TestGroupedBars(t *testing.T) {
	svg, err := GroupedBars("test chart", "FCT (ms)",
		[]string{"leaf-spine", "DRing"},
		[]BarGroup{
			{Label: "A2A", Values: []float64{1.2, 1.1}},
			{Label: "R2R", Values: []float64{1.5, 0.4}},
		})
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
	for _, want := range []string{"test chart", "A2A", "R2R", "leaf-spine", "DRing", "<rect"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
}

func TestGroupedBarsValidation(t *testing.T) {
	if _, err := GroupedBars("t", "y", nil, nil); err == nil {
		t.Fatal("empty chart accepted")
	}
	if _, err := GroupedBars("t", "y", []string{"a"}, []BarGroup{{Label: "x", Values: []float64{1, 2}}}); err == nil {
		t.Fatal("ragged group accepted")
	}
	if _, err := GroupedBars("t", "y", []string{"a"}, []BarGroup{{Label: "x", Values: []float64{math.NaN()}}}); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestGroupedBarsAllZero(t *testing.T) {
	svg, err := GroupedBars("z", "y", []string{"a"}, []BarGroup{{Label: "x", Values: []float64{0}}})
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
}

func TestLines(t *testing.T) {
	svg, err := Lines("scale", "racks", "ratio", []Series{
		{Name: "p99", X: []float64{42, 66, 90}, Y: []float64{1.0, 1.3, 2.0}},
		{Name: "median", X: []float64{42, 66, 90}, Y: []float64{1.0, 1.4, 2.2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
	if !strings.Contains(svg, "polyline") || !strings.Contains(svg, "circle") {
		t.Fatal("missing marks")
	}
}

func TestLinesValidation(t *testing.T) {
	if _, err := Lines("t", "x", "y", nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := Lines("t", "x", "y", []Series{{Name: "a", X: []float64{1}, Y: nil}}); err == nil {
		t.Fatal("ragged accepted")
	}
}

func TestHeatmapSVG(t *testing.T) {
	svg, err := HeatmapSVG("fig5", "#servers", "#clients",
		[]int{10, 20}, []int{5, 15},
		[][]float64{{0.5, 1.0}, {1.5, 2.0}})
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
	for _, want := range []string{"0.50", "2.00", "#servers", "#clients"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
}

func TestHeatmapValidation(t *testing.T) {
	if _, err := HeatmapSVG("t", "x", "y", []int{1}, []int{1}, [][]float64{{1, 2}}); err == nil {
		t.Fatal("ragged heatmap accepted")
	}
	if _, err := HeatmapSVG("t", "x", "y", nil, nil, nil); err == nil {
		t.Fatal("empty heatmap accepted")
	}
}

func TestDivergeColor(t *testing.T) {
	if c := divergeColor(math.NaN(), 2); c != "#eeeeee" {
		t.Fatalf("NaN color = %s", c)
	}
	if c := divergeColor(1, 2); c != "#ffffff" {
		t.Fatalf("center color = %s, want white", c)
	}
	hot := divergeColor(2, 2)
	cold := divergeColor(0.5, 2)
	if hot == cold || hot == "#ffffff" || cold == "#ffffff" {
		t.Fatalf("diverging scale degenerate: %s vs %s", hot, cold)
	}
}

func TestEscape(t *testing.T) {
	svg, err := GroupedBars("a<b & c>d", "y", []string{"s"}, []BarGroup{{Label: "x", Values: []float64{1}}})
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
	if strings.Contains(svg, "a<b") {
		t.Fatal("unescaped markup in output")
	}
}

func TestSortedKeys(t *testing.T) {
	got := SortedKeys(map[string]int{"b": 1, "a": 2, "c": 3})
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("keys = %v", got)
	}
}
