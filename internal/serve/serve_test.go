package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"spineless/internal/jobs"
	"spineless/internal/store"
)

func testServer(t *testing.T, cfg jobs.Config) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := jobs.New(st, cfg)
	ts := httptest.NewServer(New(m, nil))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		m.Drain(ctx)
	})
	return ts, m
}

const tinySpecJSON = `{"kind":"fct","topo":{"scale":8},"fabric":"rrg","scheme":"ecmp","tm":"A2A","util":0.2,"window_sec":0.002,"seed":1,"max_flows":40,"trials":2}`

func postSpec(t *testing.T, ts *httptest.Server, spec string) (int, SubmitResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SubmitResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, sr
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestEndToEndSubmitStreamFetchResubmit is the serve-layer smoke: submit a
// spec, stream its events to the terminal state, fetch the result by hash,
// resubmit the identical spec and verify it is a cache hit whose result
// bytes are identical to the first run's.
func TestEndToEndSubmitStreamFetchResubmit(t *testing.T) {
	ts, _ := testServer(t, jobs.Config{QueueDepth: 4, Executors: 1, TrialWorkers: 1})

	code, sub := postSpec(t, ts, tinySpecJSON)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	if sub.Cached {
		t.Fatal("first submit reported cached")
	}

	// Stream events until the job settles; the last line must be terminal.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.Job + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content type %q", ct)
	}
	var last jobs.Event
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("no events streamed")
	}
	if !last.State.Terminal() {
		t.Fatalf("stream ended on non-terminal state %s", last.State)
	}
	if last.State != jobs.StateDone {
		t.Fatalf("job ended %s (error %q)", last.State, last.Error)
	}
	if last.Done != last.Total || last.Done == 0 {
		t.Fatalf("terminal progress %d/%d", last.Done, last.Total)
	}

	// Status agrees.
	code, body := get(t, ts.URL+"/v1/jobs/"+sub.Job)
	if code != http.StatusOK {
		t.Fatalf("status: %d %s", code, body)
	}
	var st jobs.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != jobs.StateDone || st.Hash != sub.Hash {
		t.Fatalf("status %+v", st)
	}

	// Fetch the result by content hash.
	code, res1 := get(t, ts.URL+"/v1/results/"+sub.Hash)
	if code != http.StatusOK {
		t.Fatalf("result fetch: %d %s", code, res1)
	}
	var decoded jobs.Result
	if err := json.Unmarshal(res1, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.FCT == nil || decoded.FCT.Flows == 0 {
		t.Fatalf("degenerate result: %s", res1)
	}

	// Resubmit: must be a cache hit with byte-identical result.
	code, sub2 := postSpec(t, ts, tinySpecJSON)
	if code != http.StatusOK {
		t.Fatalf("resubmit: status %d", code)
	}
	if !sub2.Cached {
		t.Fatal("resubmit missed the cache")
	}
	if sub2.Hash != sub.Hash {
		t.Fatalf("resubmit hash %s != %s", sub2.Hash, sub.Hash)
	}
	code, res2 := get(t, ts.URL+"/v1/results/"+sub2.Hash)
	if code != http.StatusOK {
		t.Fatalf("second result fetch: %d", code)
	}
	if !bytes.Equal(res1, res2) {
		t.Fatal("result bytes differ between first run and cache hit")
	}

	// A cached job's event stream still delivers a terminal event.
	code, body = get(t, ts.URL+"/v1/jobs/"+sub2.Job+"/events")
	if code != http.StatusOK {
		t.Fatalf("cached events: %d", code)
	}
	var ev jobs.Event
	if err := json.Unmarshal(bytes.TrimSpace(body), &ev); err != nil {
		t.Fatalf("cached events body %q: %v", body, err)
	}
	if ev.State != jobs.StateDone || !ev.FromCache {
		t.Fatalf("cached event %+v", ev)
	}

	// Metrics reflect the session: one miss, one hit.
	code, body = get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{
		"spinelessd_cache_hits_total 1",
		"spinelessd_cache_misses_total 1",
		"spinelessd_jobs_submitted_total 1",
		"spinelessd_job_latency_ms_count 1",
		"spinelessd_store_entries 1",
		`spinelessd_jobs{state="done"} 2`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if !strings.Contains(string(body), "spinelessd_sim_events_total") {
		t.Error("metrics missing sim event throughput")
	}
}

func TestSubmitErrors(t *testing.T) {
	ts, _ := testServer(t, jobs.Config{QueueDepth: 4, Executors: 1})

	code, _ := postSpec(t, ts, `{"kind":"warp"}`)
	if code != http.StatusBadRequest {
		t.Errorf("unknown kind: status %d", code)
	}
	code, _ = postSpec(t, ts, `{"kind":"fct","bogus":1}`)
	if code != http.StatusBadRequest {
		t.Errorf("unknown field: status %d", code)
	}
	code, _ = postSpec(t, ts, `not json`)
	if code != http.StatusBadRequest {
		t.Errorf("malformed body: status %d", code)
	}

	if code, body := get(t, ts.URL+"/v1/jobs/j999999"); code != http.StatusNotFound {
		t.Errorf("missing job: %d %s", code, body)
	}
	if code, _ := get(t, ts.URL+"/v1/results/nothex"); code != http.StatusBadRequest {
		t.Errorf("malformed hash: %d", code)
	}
	if code, _ := get(t, ts.URL+"/v1/results/"+strings.Repeat("ab", 32)); code != http.StatusNotFound {
		t.Errorf("absent hash: %d", code)
	}
}

func TestQueueFullMapsTo503(t *testing.T) {
	ts, m := testServer(t, jobs.Config{QueueDepth: 1, Executors: 1})
	// Slow specs (many trials) so neither job finishes during the test.
	spec := func(seed int) string {
		s := strings.Replace(tinySpecJSON, `"trials":2`, `"trials":500`, 1)
		return strings.Replace(s, `"seed":1`, `"seed":1`+strings.Repeat("0", seed), 1)
	}
	// Fill the executor and the queue with distinct specs.
	code, sub1 := postSpec(t, ts, spec(1))
	if code != http.StatusAccepted {
		t.Fatalf("submit 1: %d", code)
	}
	// Wait for the executor to claim job 1 so the queue slot is free.
	j1, _ := m.Get(sub1.Job)
	deadline := time.Now().Add(10 * time.Second)
	for j1.State() == jobs.StatePending && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	code, sub2 := postSpec(t, ts, spec(2))
	if code != http.StatusAccepted {
		t.Fatalf("submit 2: %d", code)
	}
	// With one running and one queued, a third distinct spec must bounce.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec(3)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit: %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	// Cancel the slow jobs so cleanup's Drain returns promptly.
	m.Cancel(sub1.Job)
	m.Cancel(sub2.Job)
}

// TestShedMapsTo429 pins the admission-control status mapping: a submission
// past the shed watermark gets 429 + Retry-After while the queue-full 503
// path never fires (shedding precedes saturation).
func TestShedMapsTo429(t *testing.T) {
	ts, m := testServer(t, jobs.Config{QueueDepth: 8, ShedDepth: 1, Executors: 1})
	spec := func(n int) string {
		s := strings.Replace(tinySpecJSON, `"trials":2`, `"trials":500`, 1)
		return strings.Replace(s, `"seed":1`, `"seed":1`+strings.Repeat("0", n), 1)
	}
	code, sub1 := postSpec(t, ts, spec(1))
	if code != http.StatusAccepted {
		t.Fatalf("submit 1: %d", code)
	}
	j1, _ := m.Get(sub1.Job)
	deadline := time.Now().Add(10 * time.Second)
	for j1.State() == jobs.StatePending && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	code, sub2 := postSpec(t, ts, spec(2))
	if code != http.StatusAccepted {
		t.Fatalf("submit 2: %d", code)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec(3)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit past watermark: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if !strings.Contains(string(body), "spinelessd_jobs_shed_total 1") {
		t.Error("metrics missing shed counter")
	}
	m.Cancel(sub1.Job)
	m.Cancel(sub2.Job)
}

// TestOverloadShedsBeforeSaturation floods the server with distinct specs
// and asserts the acceptance criterion: everything beyond the watermark is
// shed with 429 before the queue saturates (no 503s), and every admitted
// job still reaches done with bounded latency — no collapse.
func TestOverloadShedsBeforeSaturation(t *testing.T) {
	ts, m := testServer(t, jobs.Config{QueueDepth: 8, ShedDepth: 4, Executors: 1, TrialWorkers: 1})
	spec := func(seed int) string {
		// Slow enough (tens of ms) that the rapid flood below outpaces the
		// single executor and actually fills the queue to the watermark.
		s := strings.Replace(tinySpecJSON, `"max_flows":40`, `"max_flows":20`, 1)
		s = strings.Replace(s, `"trials":2`, `"trials":25`, 1)
		return strings.Replace(s, `"seed":1`, fmt.Sprintf(`"seed":%d`, 1000+seed), 1)
	}
	var accepted []string
	var sheds, fulls int
	for i := 0; i < 30; i++ {
		code, sub := postSpec(t, ts, spec(i))
		switch code {
		case http.StatusAccepted, http.StatusOK:
			accepted = append(accepted, sub.Job)
		case http.StatusTooManyRequests:
			sheds++
		case http.StatusServiceUnavailable:
			fulls++
		default:
			t.Fatalf("submit %d: unexpected status %d", i, code)
		}
	}
	if fulls != 0 {
		t.Fatalf("%d submissions hit the 503 queue-full wall; shedding must fire first", fulls)
	}
	if sheds == 0 {
		t.Fatal("no submissions shed under flood")
	}
	if len(accepted) == 0 {
		t.Fatal("every submission shed; watermark admits nothing")
	}
	// Every admitted job finishes, and none took pathologically long — the
	// "p99 stays bounded" half of the criterion at test scale.
	for _, id := range accepted {
		j, ok := m.Get(id)
		if !ok {
			t.Fatalf("admitted job %s vanished", id)
		}
		select {
		case <-j.Terminal():
		case <-time.After(120 * time.Second):
			t.Fatalf("admitted job %s never settled", id)
		}
		st := j.Status()
		if st.State != jobs.StateDone {
			t.Fatalf("admitted job %s ended %s (%s)", id, st.State, st.Error)
		}
		if st.ElapsedMS > 60_000 {
			t.Fatalf("admitted job %s took %dms; latency collapsed", id, st.ElapsedMS)
		}
	}
	if snap := m.Snapshot(); snap.Rejected != 0 || snap.Shed == 0 {
		t.Fatalf("counters: rejected=%d shed=%d", snap.Rejected, snap.Shed)
	}
}

// TestHeartbeatAndDisconnectReleasesSubscription pins the stream-liveness
// satellite: heartbeat comment lines flow while a job runs, and a client
// that goes away releases its subscription promptly instead of leaking it
// until the job settles.
func TestHeartbeatAndDisconnectReleasesSubscription(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := jobs.New(st, jobs.Config{QueueDepth: 4, Executors: 1})
	srv := New(m, nil)
	srv.Heartbeat = 20 * time.Millisecond
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		m.Drain(ctx)
	})

	slow := strings.Replace(tinySpecJSON, `"trials":2`, `"trials":500`, 1)
	code, sub := postSpec(t, ts, slow)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	j, ok := m.Get(sub.Job)
	if !ok {
		t.Fatal("job vanished")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+sub.Job+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// The subscription is live and heartbeats arrive between events.
	sawHeartbeat := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, ":") {
			sawHeartbeat = true
			break
		}
		if line == "" {
			continue
		}
		var ev jobs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", line, err)
		}
	}
	if !sawHeartbeat {
		t.Fatal("no heartbeat comment line observed")
	}
	if n := j.Subscribers(); n != 1 {
		t.Fatalf("subscribers while streaming = %d, want 1", n)
	}

	// Client goes away: the handler must notice (request context) and
	// release the subscription while the job is still running.
	cancel()
	deadline := time.Now().Add(10 * time.Second)
	for j.Subscribers() != 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if n := j.Subscribers(); n != 0 {
		t.Fatalf("subscribers after disconnect = %d, want 0", n)
	}
	if j.State() != jobs.StateRunning && j.State() != jobs.StatePending {
		t.Fatalf("job settled prematurely: %s", j.State())
	}
	m.Cancel(sub.Job)
}

func TestCancelOverHTTP(t *testing.T) {
	ts, m := testServer(t, jobs.Config{QueueDepth: 4, Executors: 1})
	slow := strings.Replace(tinySpecJSON, `"trials":2`, `"trials":500`, 1)
	code, sub := postSpec(t, ts, slow)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.Job, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	j, ok := m.Get(sub.Job)
	if !ok {
		t.Fatal("job vanished")
	}
	select {
	case <-j.Terminal():
	case <-time.After(60 * time.Second):
		t.Fatal("cancelled job never settled")
	}
	if st := j.State(); st != jobs.StateCancelled {
		t.Fatalf("state after cancel: %s", st)
	}
	// Cancelling again conflicts.
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("double cancel: %d", resp.StatusCode)
	}
}

// telemetrySpec is tinySpecJSON with live telemetry enabled and enough
// trials to stay running while the test observes the stream.
func telemetrySpec(trials int) string {
	s := strings.Replace(tinySpecJSON, `"trials":2`, fmt.Sprintf(`"trials":%d`, trials), 1)
	return strings.Replace(s, `{"kind":"fct"`, `{"kind":"fct","telemetry":true`, 1)
}

// TestTelemetryStreamAndHeatmap drives the digital-twin surface end to
// end: a telemetry-enabled job appears in /v1/telemetry frames with live
// traffic totals, its link-utilization window renders as CSV on
// /v1/telemetry/heatmap, and /metrics carries the per-job gauges.
func TestTelemetryStreamAndHeatmap(t *testing.T) {
	ts, m := testServer(t, jobs.Config{QueueDepth: 4, Executors: 1, TrialWorkers: 1})
	code, sub := postSpec(t, ts, telemetrySpec(500))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}

	resp, err := http.Get(ts.URL + "/v1/telemetry?interval_ms=20")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("telemetry content type %q", ct)
	}
	var live TelemetryFrame
	deadline := time.Now().Add(60 * time.Second)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, ":") {
			continue
		}
		var fr TelemetryFrame
		if err := json.Unmarshal([]byte(line), &fr); err != nil {
			t.Fatalf("bad telemetry line %q: %v", line, err)
		}
		if fr.Active != len(fr.Jobs) {
			t.Fatalf("frame active=%d with %d jobs", fr.Active, len(fr.Jobs))
		}
		if fr.Active >= 1 && fr.Jobs[0].Totals.TxBytes > 0 {
			live = fr
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no live telemetry frame before deadline")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if live.Jobs[0].Job != sub.Job {
		t.Fatalf("frame names job %q, submitted %q", live.Jobs[0].Job, sub.Job)
	}
	if live.Jobs[0].BucketNS <= 0 {
		t.Fatalf("frame without bucket geometry: %+v", live.Jobs[0])
	}
	if len(live.Jobs[0].TopLinks) == 0 || live.Jobs[0].TopLinks[0].MeanUtil <= 0 {
		t.Fatalf("no busy links in live frame: %+v", live.Jobs[0])
	}

	// The heatmap endpoint renders the same window as CSV. With a single
	// running job the job param is optional.
	code, body := get(t, ts.URL+"/v1/telemetry/heatmap")
	if code != http.StatusOK {
		t.Fatalf("heatmap: %d %s", code, body)
	}
	if !strings.HasPrefix(string(body), `link\t_us`) {
		t.Fatalf("heatmap CSV header: %q", string(body)[:min(40, len(body))])
	}
	if strings.Contains(string(body), "NaN") {
		t.Fatal("heatmap CSV leaks NaN cells")
	}
	if code, _ := get(t, ts.URL+"/v1/telemetry/heatmap?job=zzz"); code != http.StatusNotFound {
		t.Fatalf("heatmap for unknown job: %d", code)
	}

	// Per-job gauges surface on /metrics while the job runs.
	code, body = get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{
		"spinelessd_telemetry_streams 1",
		fmt.Sprintf("spinelessd_telemetry_tx_bytes{job=%q}", sub.Job),
		fmt.Sprintf("spinelessd_telemetry_drops{job=%q,reason=\"blackhole\"}", sub.Job),
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// A bounded one-frame poll (the smoke-mode shape) terminates by itself.
	code, body = get(t, ts.URL+"/v1/telemetry?frames=1")
	if code != http.StatusOK {
		t.Fatalf("one-frame poll: %d", code)
	}
	var fr TelemetryFrame
	if err := json.Unmarshal(bytes.TrimSpace(body), &fr); err != nil {
		t.Fatalf("one-frame body %q: %v", body, err)
	}

	// Rejecting a sharded telemetry spec is the serve-visible half of the
	// config-layer guard.
	shardSpec := strings.Replace(telemetrySpec(2), `"seed":1`, `"seed":1,"shards":2`, 1)
	if code, _ := postSpec(t, ts, shardSpec); code != http.StatusBadRequest {
		t.Fatalf("telemetry+shards spec accepted with status %d", code)
	}

	m.Cancel(sub.Job)
}

// TestStreamsSurviveClientCloseMidHeartbeat is the satellite -race test:
// both NDJSON streams (job events and telemetry) have their client vanish
// while heartbeats/frames are in flight, and every handler must notice and
// exit promptly — the test server's Close blocks on leaked handlers, so a
// stuck stream fails the watchdog rather than leaking forever.
func TestStreamsSurviveClientCloseMidHeartbeat(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := jobs.New(st, jobs.Config{QueueDepth: 4, Executors: 1})
	srv := New(m, nil)
	srv.Heartbeat = 5 * time.Millisecond
	ts := httptest.NewServer(srv)

	code, sub := postSpec(t, ts, telemetrySpec(500))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	j, ok := m.Get(sub.Job)
	if !ok {
		t.Fatal("job vanished")
	}

	// Open both streams, read until each has written at least one
	// heartbeat/frame, then cancel the clients mid-stream.
	open := func(path string) (context.CancelFunc, *http.Response) {
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return cancel, resp
	}
	cancelEv, respEv := open("/v1/jobs/" + sub.Job + "/events")
	defer respEv.Body.Close()
	cancelTel, respTel := open("/v1/telemetry?interval_ms=5")
	defer respTel.Body.Close()

	buf := make([]byte, 256)
	if _, err := respEv.Body.Read(buf); err != nil {
		t.Fatalf("events stream dead on arrival: %v", err)
	}
	if _, err := respTel.Body.Read(buf); err != nil {
		t.Fatalf("telemetry stream dead on arrival: %v", err)
	}

	// Let heartbeats tick, then yank both clients between beats.
	time.Sleep(12 * time.Millisecond)
	cancelEv()
	cancelTel()

	deadline := time.Now().Add(10 * time.Second)
	for j.Subscribers() != 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if n := j.Subscribers(); n != 0 {
		t.Fatalf("events subscription leaked after disconnect: %d", n)
	}

	m.Cancel(sub.Job)
	// Watchdog: Close blocks until every handler returns. A leaked stream
	// handler turns into a visible failure here instead of a hung test.
	closed := make(chan struct{})
	go func() {
		ts.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("server close timed out: a streaming handler leaked")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
