// Package serve is spinelessd's HTTP surface: a small, stdlib-only JSON
// API over internal/jobs for submitting experiment specs, watching their
// progress as an NDJSON event stream, fetching content-addressed results,
// and scraping operational metrics in Prometheus text format.
//
//	POST   /v1/jobs               submit a spec (200 cached / 202 accepted)
//	GET    /v1/jobs/{id}          job status
//	DELETE /v1/jobs/{id}          cancel
//	GET    /v1/jobs/{id}/events   NDJSON progress stream until terminal
//	GET    /v1/results/{hash}     raw result JSON from the store
//	GET    /v1/telemetry          NDJSON live-telemetry frames (digital twin)
//	GET    /v1/telemetry/heatmap  link-utilization heatmap as CSV
//	GET    /metrics               text metrics
//	GET    /healthz               liveness probe
//
// Overload maps to HTTP status: admission-control shedding (the manager's
// queue-depth/in-flight watermarks) is 429 + Retry-After, a saturated queue
// is 503 + Retry-After. Clients should treat both as backoff signals; 429
// is the polite early one.
//
// The event stream is NDJSON with one extension: lines beginning with ':'
// are heartbeat comments, sent periodically so proxies keep idle streams
// open and so the server notices dead clients by write error and releases
// their subscription. Clients must skip blank and ':' lines. Under load the
// stream degrades gracefully — buffered progress events are coalesced to
// the newest — but the terminal event is always delivered.
//
// The package-scope determinism exemption covers operational telemetry
// only (request timing and metrics formatting); no simulation state passes
// through this package — results are opaque bytes from the store.
//
//lint:allowpkg determinism
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"spineless/internal/jobs"
	"spineless/internal/store"
	"spineless/internal/telemetry"
)

// maxSpecBytes bounds a POST /v1/jobs body; specs are small.
const maxSpecBytes = 1 << 20

// DefaultHeartbeat is the event-stream heartbeat period when the Server's
// Heartbeat field is left zero.
const DefaultHeartbeat = 15 * time.Second

// Server routes HTTP requests to a jobs.Manager.
type Server struct {
	// Heartbeat is the NDJSON event-stream heartbeat period (0 =
	// DefaultHeartbeat). Tests and the fleet smoke shrink it.
	Heartbeat time.Duration

	m    *jobs.Manager
	mux  *http.ServeMux
	logf func(format string, args ...any)
}

// SubmitResponse is the POST /v1/jobs body.
type SubmitResponse struct {
	Job    string      `json:"job"`
	Hash   string      `json:"hash"`
	Cached bool        `json:"cached"`
	Status jobs.Status `json:"status"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// New builds a Server over m. logf may be nil.
func New(m *jobs.Manager, logf func(format string, args ...any)) *Server {
	s := &Server{m: m, logf: logf}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.submit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.status)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.events)
	mux.HandleFunc("GET /v1/results/{hash}", s.result)
	mux.HandleFunc("GET /v1/telemetry", s.telemetry)
	mux.HandleFunc("GET /v1/telemetry/heatmap", s.heatmap)
	mux.HandleFunc("GET /metrics", s.metrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // response writer errors are the client's problem
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// submit decodes a spec and hands it to the manager. Cache hits return 200
// with the terminal status; fresh submissions return 202 Accepted. A full
// queue maps to 503 + Retry-After so clients back off instead of piling on.
func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "spec exceeds %d bytes", maxSpecBytes)
		return
	}
	var sp jobs.Spec
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		writeError(w, http.StatusBadRequest, "decoding spec: %v", err)
		return
	}
	j, cached, err := s.m.Submit(sp)
	switch {
	case err == jobs.ErrOverloaded:
		// Shed by admission control: the queue still has headroom, so this
		// is the polite 429 clients should back off on.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case err == jobs.ErrQueueFull:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err == jobs.ErrDraining:
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	code := http.StatusAccepted
	if cached {
		code = http.StatusOK
	}
	writeJSON(w, code, SubmitResponse{Job: j.ID, Hash: j.Hash, Cached: cached, Status: j.Status()})
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	id := r.PathValue("id")
	j, ok := s.m.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return nil, false
	}
	return j, true
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if !s.m.Cancel(j.ID) {
		writeError(w, http.StatusConflict, "job %s already %s", j.ID, j.State())
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// ndjson owns the wire framing shared by every streaming endpoint
// (/v1/jobs/{id}/events, /v1/telemetry): NDJSON headers, one JSON document
// per line, ':'-prefixed heartbeat comments, and a flush after every line
// so frames cross proxies promptly. Every write happens on the single
// handler goroutine that created it — that serialization is what makes the
// heartbeat ticker safe against the terminal event and the subscription
// close (the satellite audit of these paths found the framing correct
// exactly because nothing here is ever shared across goroutines; keeping
// both streams on this one helper keeps it that way).
type ndjson struct {
	w  http.ResponseWriter
	fl http.Flusher
	e  *json.Encoder
}

// startNDJSON writes the streaming headers and returns the framing writer.
func startNDJSON(w http.ResponseWriter) *ndjson {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	return &ndjson{w: w, fl: fl, e: json.NewEncoder(w)}
}

func (n *ndjson) flush() {
	if n.fl != nil {
		n.fl.Flush()
	}
}

// send encodes one event line. A write error means the client is gone; the
// caller must return and release its resources.
func (n *ndjson) send(v any) error {
	if err := n.e.Encode(v); err != nil {
		return err
	}
	n.flush()
	return nil
}

// heartbeat writes one comment line. Same error contract as send.
func (n *ndjson) heartbeat() error {
	if _, err := io.WriteString(n.w, ": hb\n"); err != nil {
		return err
	}
	n.flush()
	return nil
}

// heartbeatPeriod resolves the configured heartbeat.
func (s *Server) heartbeatPeriod() time.Duration {
	if s.Heartbeat > 0 {
		return s.Heartbeat
	}
	return DefaultHeartbeat
}

// events streams the job's lifecycle as NDJSON: one event per line, the
// current state first, closing after the terminal event (or when the
// client goes away — the request context and heartbeat write errors both
// release the subscription, so dead clients never pin a job's subscriber
// slot). Between events a periodic ':'-prefixed heartbeat comment line is
// written. Progress events that pile up behind a slow reader are coalesced
// to the newest (graceful degradation: granularity drops, the terminal
// event never does).
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	stream := startNDJSON(w)
	ticker := time.NewTicker(s.heartbeatPeriod())
	defer ticker.Stop()

	ch, stop := j.Subscribe()
	defer stop()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return
			}
			// Coalesce whatever already sits in the buffer down to the
			// newest event. If the channel closes mid-drain the last event
			// received is the terminal one: encode it, then exit.
		drain:
			for {
				select {
				case next, more := <-ch:
					if !more {
						open = false
						break drain
					}
					ev = next
				default:
					break drain
				}
			}
			if err := stream.send(ev); err != nil {
				return
			}
			if !open {
				return
			}
		case <-ticker.C:
			if err := stream.heartbeat(); err != nil {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// TelemetryFrame is one NDJSON line on /v1/telemetry: a point-in-time view
// of every telemetry-enabled job in flight. Frames double as liveness —
// one is sent every interval even when nothing is running — so the server
// notices dead clients by write error, exactly like the events heartbeat.
type TelemetryFrame struct {
	Active int            `json:"active"`
	Jobs   []TelemetryJob `json:"jobs,omitempty"`
}

// TelemetryJob digests one job's live telemetry window.
type TelemetryJob struct {
	Job      string           `json:"job"`
	BucketNS int64            `json:"bucket_ns"`
	Buckets  int              `json:"buckets"`
	Mixed    bool             `json:"mixed,omitempty"`
	Totals   telemetry.Totals `json:"totals"`
	TopLinks []TelemetryLink  `json:"top_links,omitempty"`
}

// TelemetryLink is one busy link's utilization over the retained window.
type TelemetryLink struct {
	Link     int     `json:"link"`
	MeanUtil float64 `json:"mean_util"`
	PeakUtil float64 `json:"peak_util"`
}

// topLinkFrames digests the n busiest links of a snapshot.
func topLinkFrames(sn *telemetry.Snapshot, n int) []TelemetryLink {
	var out []TelemetryLink
	for _, l := range sn.TopLinks(n) {
		u := sn.Utilization(l)
		if u == nil {
			break
		}
		var sum, peak float64
		for _, v := range u {
			sum += v
			if v > peak {
				peak = v
			}
		}
		out = append(out, TelemetryLink{Link: l, MeanUtil: sum / float64(len(u)), PeakUtil: peak})
	}
	return out
}

// telemetry streams the manager's live telemetry hub as NDJSON frames, one
// frame per interval (?interval_ms, default 1000), until the client goes
// away or ?frames=N frames have been sent (0 = unbounded). Each frame
// digests every telemetry-enabled running job: lifetime totals plus the
// busiest links' utilization over the retained window.
func (s *Server) telemetry(w http.ResponseWriter, r *http.Request) {
	interval := time.Second
	if ms := r.URL.Query().Get("interval_ms"); ms != "" {
		v, err := strconv.Atoi(ms)
		if err != nil || v <= 0 {
			writeError(w, http.StatusBadRequest, "bad interval_ms %q", ms)
			return
		}
		if v < 10 {
			v = 10
		}
		interval = time.Duration(v) * time.Millisecond
	}
	maxFrames := 0
	if fs := r.URL.Query().Get("frames"); fs != "" {
		v, err := strconv.Atoi(fs)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "bad frames %q", fs)
			return
		}
		maxFrames = v
	}

	stream := startNDJSON(w)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	sent := 0
	for {
		frame := TelemetryFrame{}
		for _, e := range s.m.Hub().Snapshot() {
			frame.Jobs = append(frame.Jobs, TelemetryJob{
				Job:      e.ID,
				BucketNS: e.Snap.BucketNS,
				Buckets:  e.Snap.Buckets(),
				Mixed:    e.Snap.Mixed,
				Totals:   e.Snap.Totals,
				TopLinks: topLinkFrames(e.Snap, 5),
			})
		}
		frame.Active = len(frame.Jobs)
		if err := stream.send(frame); err != nil {
			return
		}
		sent++
		if maxFrames > 0 && sent >= maxFrames {
			return
		}
		select {
		case <-ticker.C:
		case <-r.Context().Done():
			return
		}
	}
}

// heatmap renders one running job's link-utilization window as CSV
// (metrics.Heatmap, Y = link id, X = bucket start in µs). ?job selects the
// job; with exactly one telemetry-enabled job running it may be omitted.
// ?links bounds the busiest-links row count (default 16).
func (s *Server) heatmap(w http.ResponseWriter, r *http.Request) {
	maxLinks := 16
	if ls := r.URL.Query().Get("links"); ls != "" {
		v, err := strconv.Atoi(ls)
		if err != nil || v <= 0 {
			writeError(w, http.StatusBadRequest, "bad links %q", ls)
			return
		}
		maxLinks = v
	}
	id := r.URL.Query().Get("job")
	var rec *telemetry.Recorder
	if id == "" {
		entries := s.m.Hub().Snapshot()
		if len(entries) != 1 {
			writeError(w, http.StatusNotFound, "%d telemetry-enabled jobs running; pass ?job=", len(entries))
			return
		}
		id = entries[0].ID
	}
	rec = s.m.Hub().Get(id)
	if rec == nil {
		writeError(w, http.StatusNotFound, "no live telemetry for job %q", id)
		return
	}
	sn := rec.Snapshot()
	if sn.Mixed {
		writeError(w, http.StatusConflict, "job %q merged mixed fabric shapes; no per-link series", id)
		return
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, sn.UtilHeatmap("link utilization "+id, maxLinks).CSV())
}

// result serves the raw result document for a content hash, straight from
// the store. The bytes are exactly what the producing job committed, so
// repeated fetches of the same hash are byte-identical.
func (s *Server) result(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if !store.ValidKey(hash) {
		writeError(w, http.StatusBadRequest, "malformed hash %q", hash)
		return
	}
	st := s.m.Store()
	if st == nil {
		writeError(w, http.StatusNotFound, "no result store configured")
		return
	}
	e, ok := st.Get(hash)
	if !ok {
		writeError(w, http.StatusNotFound, "no result for %s", hash)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(e.Result)
}

// metrics renders manager and store counters in Prometheus text format.
func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	snap := s.m.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}

	gauge("spinelessd_queue_depth", "Jobs waiting in the bounded queue.", float64(snap.QueueDepth))
	gauge("spinelessd_queue_capacity", "Capacity of the bounded queue.", float64(snap.QueueCapacity))
	counter("spinelessd_jobs_submitted_total", "Jobs accepted onto the queue.", float64(snap.Submitted))
	counter("spinelessd_jobs_deduped_total", "Submissions coalesced onto an in-flight identical spec.", float64(snap.Deduped))
	counter("spinelessd_jobs_rejected_total", "Submissions rejected because the queue was full.", float64(snap.Rejected))
	counter("spinelessd_jobs_shed_total", "Submissions shed by admission control before queue saturation.", float64(snap.Shed))

	states := make([]string, 0, len(snap.ByState))
	for st := range snap.ByState {
		states = append(states, string(st))
	}
	sort.Strings(states)
	fmt.Fprintf(w, "# HELP spinelessd_jobs Jobs by lifecycle state.\n# TYPE spinelessd_jobs gauge\n")
	for _, st := range states {
		fmt.Fprintf(w, "spinelessd_jobs{state=%q} %d\n", st, snap.ByState[jobs.State(st)])
	}

	counter("spinelessd_cache_hits_total", "Submissions served from the result store.", float64(snap.CacheHits))
	counter("spinelessd_cache_misses_total", "Submissions that had to run.", float64(snap.CacheMisses))
	counter("spinelessd_audit_runs_total", "Sampled cache-hit re-executions completed.", float64(snap.Audits))
	counter("spinelessd_audit_skipped_total", "Audits skipped because one was already running.", float64(snap.AuditSkipped))
	counter("spinelessd_audit_mismatch_total", "Audits whose re-execution differed from the stored result.", float64(snap.AuditMismatch))
	counter("spinelessd_sim_events_total", "Packet-simulator events processed by completed jobs.", float64(snap.SimEvents))
	counter("spinelessd_busy_seconds_total", "Wall-clock seconds executors spent running jobs.", snap.BusySeconds)

	fmt.Fprintf(w, "# HELP spinelessd_job_latency_ms Job run latency in milliseconds.\n# TYPE spinelessd_job_latency_ms histogram\n")
	for i, b := range snap.LatencyBoundsMS {
		fmt.Fprintf(w, "spinelessd_job_latency_ms_bucket{le=\"%g\"} %d\n", b, snap.LatencyBuckets[i])
	}
	fmt.Fprintf(w, "spinelessd_job_latency_ms_bucket{le=\"+Inf\"} %d\n", snap.LatencyBuckets[len(snap.LatencyBuckets)-1])
	fmt.Fprintf(w, "spinelessd_job_latency_ms_sum %g\n", snap.LatencySumMS)
	fmt.Fprintf(w, "spinelessd_job_latency_ms_count %d\n", snap.LatencyCount)

	// Live telemetry: one gauge set per telemetry-enabled running job.
	// These are gauges, not counters — entries leave the hub when their job
	// settles, so the series reflect the running fabric twin, not history.
	entries := s.m.Hub().Snapshot()
	gauge("spinelessd_telemetry_streams", "Telemetry-enabled jobs currently running.", float64(len(entries)))
	if len(entries) > 0 {
		fmt.Fprintf(w, "# HELP spinelessd_telemetry_tx_bytes Wire bytes transmitted so far by a running job's simulation.\n# TYPE spinelessd_telemetry_tx_bytes gauge\n")
		for _, e := range entries {
			fmt.Fprintf(w, "spinelessd_telemetry_tx_bytes{job=%q} %d\n", e.ID, e.Snap.Totals.TxBytes)
		}
		fmt.Fprintf(w, "# HELP spinelessd_telemetry_drops Packet drops so far by reason for a running job's simulation.\n# TYPE spinelessd_telemetry_drops gauge\n")
		for _, e := range entries {
			d := e.Snap.Totals.Drops()
			for reason, name := range [...]string{"queue", "gray", "blackhole"} {
				fmt.Fprintf(w, "spinelessd_telemetry_drops{job=%q,reason=%q} %d\n", e.ID, name, d[reason])
			}
		}
		fmt.Fprintf(w, "# HELP spinelessd_telemetry_links_down Links currently down in a running job's fabric.\n# TYPE spinelessd_telemetry_links_down gauge\n")
		for _, e := range entries {
			fmt.Fprintf(w, "spinelessd_telemetry_links_down{job=%q} %d\n", e.ID, e.Snap.Totals.LinksDown)
		}
	}

	if st := s.m.Store(); st != nil {
		c := st.Snapshot()
		counter("spinelessd_store_hits_total", "Result-store lookups that found a valid entry.", float64(c.Hits))
		counter("spinelessd_store_misses_total", "Result-store lookups that missed.", float64(c.Misses))
		counter("spinelessd_store_puts_total", "Entries committed to the result store.", float64(c.Puts))
		counter("spinelessd_store_evictions_total", "Entries evicted to respect the size cap.", float64(c.Evictions))
		counter("spinelessd_store_corrupt_total", "Entries dropped as torn or tampered.", float64(c.Corrupt))
		gauge("spinelessd_store_entries", "Entries currently in the result store.", float64(c.Entries))
		gauge("spinelessd_store_bytes", "Bytes currently in the result store.", float64(c.Bytes))
	}
}
