// Package faults defines deterministic, seedable fault schedules injected
// into a live packet-level simulation: clean link cuts and repairs at
// absolute sim times, periodic flapping, and gray failures (per-link random
// loss and rate degradation that routing never detects). A Schedule is pure
// data — the netsim package interprets it — so the same schedule and seed
// always reproduce the same run byte for byte.
//
// This is the §7 "Impact of failures" question asked dynamically: the
// static studies in internal/resilience compare steady states, while a
// Schedule makes the transient itself measurable (blackholed packets,
// retransmission timeouts, FCT inflation during the reconvergence window).
package faults

import (
	"fmt"
	"sort"
)

// Kind distinguishes fault events.
type Kind uint8

const (
	// LinkDown cuts every parallel copy of an undirected link: queued
	// packets are dropped and later arrivals blackhole until a LinkUp.
	LinkDown Kind = iota
	// LinkUp restores a previously cut link.
	LinkUp
	// GraySet turns a link gray: each packet entering it is independently
	// dropped with LossProb, and its rate is scaled by RateFactor. The
	// link stays "up" — routing never reacts, which is what makes gray
	// failures costly in practice.
	GraySet
	// GrayClear restores a gray link to nominal loss and rate.
	GrayClear
)

// String names the kind for tables and errors.
func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case GraySet:
		return "gray-set"
	case GrayClear:
		return "gray-clear"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one scheduled fault on the undirected switch link A-B. Events at
// equal times apply in insertion order, keeping schedules deterministic.
type Event struct {
	TimeNS int64
	Kind   Kind
	A, B   int

	// LossProb and RateFactor apply to GraySet only: per-packet drop
	// probability in [0, 1) and a multiplier in (0, 1] on the nominal link
	// rate (1 = undegraded).
	LossProb   float64
	RateFactor float64
}

// Schedule is an ordered fault plan for one simulation run. Seed drives the
// gray-loss coin flips inside the simulator; everything else is exact.
type Schedule struct {
	Seed   int64
	Events []Event
}

// Cut schedules a clean failure of link a-b at t.
func (s *Schedule) Cut(t int64, a, b int) {
	s.Events = append(s.Events, Event{TimeNS: t, Kind: LinkDown, A: a, B: b})
}

// Restore schedules the repair of link a-b at t.
func (s *Schedule) Restore(t int64, a, b int) {
	s.Events = append(s.Events, Event{TimeNS: t, Kind: LinkUp, A: a, B: b})
}

// Gray schedules a gray failure of link a-b at t: per-packet loss
// probability lossProb and rate scaled by rateFactor (pass 1 to keep the
// nominal rate).
func (s *Schedule) Gray(t int64, a, b int, lossProb, rateFactor float64) {
	s.Events = append(s.Events, Event{
		TimeNS: t, Kind: GraySet, A: a, B: b,
		LossProb: lossProb, RateFactor: rateFactor,
	})
}

// ClearGray schedules the recovery of a gray link at t.
func (s *Schedule) ClearGray(t int64, a, b int) {
	s.Events = append(s.Events, Event{TimeNS: t, Kind: GrayClear, A: a, B: b})
}

// Flap schedules cycles of down/up on link a-b: the first cut lands at
// firstDownNS, each outage lasts downForNS, each recovery lasts upForNS,
// and the last cycle's repair is included (the link ends up).
func (s *Schedule) Flap(a, b int, firstDownNS, downForNS, upForNS int64, cycles int) {
	t := firstDownNS
	for c := 0; c < cycles; c++ {
		s.Cut(t, a, b)
		s.Restore(t+downForNS, a, b)
		t += downForNS + upForNS
	}
}

// Sorted returns the events in application order: ascending time, ties
// broken by insertion order (stable).
func (s *Schedule) Sorted() []Event {
	out := append([]Event(nil), s.Events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].TimeNS < out[j].TimeNS })
	return out
}

// HasGrayLoss reports whether any event sets a nonzero loss probability,
// i.e. whether the simulator will consume random coin flips.
func (s *Schedule) HasGrayLoss() bool {
	for _, e := range s.Events {
		if e.Kind == GraySet && e.LossProb > 0 {
			return true
		}
	}
	return false
}

// Validate checks event invariants that do not need the fabric: times,
// endpoint sanity, and gray parameters. Link existence is checked by the
// simulator, which knows the fabric.
func (s *Schedule) Validate() error {
	for i, e := range s.Events {
		if e.TimeNS < 0 {
			return fmt.Errorf("faults: event %d (%s %d-%d) at negative time %d", i, e.Kind, e.A, e.B, e.TimeNS)
		}
		if e.A == e.B {
			return fmt.Errorf("faults: event %d (%s) is a self-loop at switch %d", i, e.Kind, e.A)
		}
		if e.A < 0 || e.B < 0 {
			return fmt.Errorf("faults: event %d (%s %d-%d) has a negative endpoint", i, e.Kind, e.A, e.B)
		}
		if e.Kind == GraySet {
			if e.LossProb < 0 || e.LossProb >= 1 {
				return fmt.Errorf("faults: event %d gray loss %.3f outside [0, 1)", i, e.LossProb)
			}
			if e.RateFactor <= 0 || e.RateFactor > 1 {
				return fmt.Errorf("faults: event %d rate factor %.3f outside (0, 1]", i, e.RateFactor)
			}
		}
	}
	return nil
}
