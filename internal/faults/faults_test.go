package faults

import "testing"

func TestFlapGeneratesCycles(t *testing.T) {
	var s Schedule
	s.Flap(1, 2, 1000, 100, 400, 3)
	if len(s.Events) != 6 {
		t.Fatalf("events = %d, want 6", len(s.Events))
	}
	wantTimes := []int64{1000, 1100, 1500, 1600, 2000, 2100}
	for i, e := range s.Events {
		if e.TimeNS != wantTimes[i] {
			t.Fatalf("event %d at %d, want %d", i, e.TimeNS, wantTimes[i])
		}
		wantKind := LinkDown
		if i%2 == 1 {
			wantKind = LinkUp
		}
		if e.Kind != wantKind {
			t.Fatalf("event %d kind %v, want %v", i, e.Kind, wantKind)
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSortedIsStableAtEqualTimes(t *testing.T) {
	var s Schedule
	s.Restore(5, 0, 1) // inserted first, must apply first at t=5
	s.Cut(5, 0, 1)
	s.Cut(1, 2, 3)
	got := s.Sorted()
	if got[0].TimeNS != 1 || got[1].Kind != LinkUp || got[2].Kind != LinkDown {
		t.Fatalf("sorted order wrong: %+v", got)
	}
	// Sorted must not mutate the schedule.
	if s.Events[0].TimeNS != 5 {
		t.Fatal("Sorted mutated the schedule")
	}
}

func TestValidateRejectsBadEvents(t *testing.T) {
	cases := []Schedule{
		{Events: []Event{{TimeNS: -1, Kind: LinkDown, A: 0, B: 1}}},
		{Events: []Event{{TimeNS: 0, Kind: LinkDown, A: 2, B: 2}}},
		{Events: []Event{{TimeNS: 0, Kind: LinkDown, A: -1, B: 2}}},
		{Events: []Event{{TimeNS: 0, Kind: GraySet, A: 0, B: 1, LossProb: 1.0, RateFactor: 1}}},
		{Events: []Event{{TimeNS: 0, Kind: GraySet, A: 0, B: 1, LossProb: 0.1, RateFactor: 0}}},
		{Events: []Event{{TimeNS: 0, Kind: GraySet, A: 0, B: 1, LossProb: 0.1, RateFactor: 1.5}}},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d accepted: %+v", i, c.Events)
		}
	}
}

func TestHasGrayLoss(t *testing.T) {
	var s Schedule
	s.Cut(0, 0, 1)
	s.Gray(0, 0, 1, 0, 0.5) // rate-only gray: no coin flips needed
	if s.HasGrayLoss() {
		t.Fatal("rate-only gray reported as lossy")
	}
	s.Gray(0, 2, 3, 0.05, 1)
	if !s.HasGrayLoss() {
		t.Fatal("lossy gray not detected")
	}
}
