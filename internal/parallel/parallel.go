// Package parallel is the deterministic trial engine behind every fan-out
// in this tree: multi-window FCT trials, heatmap cells, scale-sweep points,
// failure-study fractions and per-destination FIB construction.
//
// The contract that keeps parallel output byte-identical to serial output:
//
//  1. Trials are indexed. Trial i derives everything it needs — above all
//     its RNG — from the index (seed = DeriveSeed(baseSeed, i)); a
//     *rand.Rand is never shared between trials, so the draw sequence each
//     trial sees is independent of scheduling.
//  2. Results are collected by index. fn(i) writes only slot i of storage
//     preallocated by the caller; no trial observes another's output.
//  3. Shared inputs are immutable. Fabrics, FIBs and configs passed into
//     the closure must be read-only for the duration of the fan-out
//     (spinelint's sharedrand checker enforces the RNG half of this).
//
// Under these three rules the worker count is a pure throughput knob:
// workers=1 reproduces the serial loop exactly, workers=N produces the
// identical bytes faster.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: any n >= 1 is used as given, and
// n <= 0 (the flag default) means one worker per available CPU.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// DeriveSeed maps (baseSeed, trialIndex) to the trial's private seed with a
// splitmix64 finalizer. The derivation is a pure function of its arguments —
// never of scheduling — and successive indices land in unrelated regions of
// the seed space, so trial RNG streams do not overlap the way baseSeed+i
// style derivation would under math/rand's lagged-Fibonacci source.
func DeriveSeed(baseSeed int64, trialIndex int) int64 {
	x := uint64(baseSeed) + 0x9e3779b97f4a7c15*uint64(trialIndex+1)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return int64(x ^ (x >> 31))
}

// ForEach runs fn(0) … fn(n-1) on min(Workers(workers), n) goroutines and
// returns once every call has completed. Indices are claimed atomically, so
// the assignment of index to worker is nondeterministic — fn must follow the
// package contract (index-derived seeds, index-slot writes, immutable shared
// state) for the combined result to be schedule-independent.
//
// Errors are aggregated deterministically: ForEach returns the non-nil
// error with the lowest index, exactly the error the serial loop would have
// stopped on. Remaining indices still run (a failing trial does not cancel
// its siblings); callers that need per-trial errors should record them into
// their own slot and return nil.
//
// workers <= 1 (after resolution, e.g. on a single-CPU machine) runs the
// loop inline in index order with no goroutines.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), workers, n, fn)
}

// ForEachCtx is ForEach with a cancellation path: once ctx is cancelled no
// further index is started (indices already inside fn run to completion) and
// the sweep returns early instead of grinding through the remainder.
//
// Cancellation preserves the lowest-index-error semantics exactly: the first
// index that would have started after the cancel records ctx.Err() in its
// slot, so the aggregated return is still the non-nil error with the lowest
// index — a genuine fn error from before the cancel wins over the
// cancellation error, and a cancelled sweep with no fn errors returns
// ctx.Err().
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				if first == nil {
					first = err
				}
				break
			}
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				// The claim order is monotone, so the first post-cancel
				// claim is the lowest unstarted index: recording ctx.Err()
				// there keeps error aggregation schedule-independent.
				if err := ctx.Err(); err != nil {
					errs[i] = err
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
