package parallel

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-5); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-5) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
}

// TestDeriveSeedStable pins the derivation: these values are part of the
// replay contract — changing them silently re-seeds every recorded
// multi-trial experiment.
func TestDeriveSeedStable(t *testing.T) {
	want := []int64{
		DeriveSeed(1, 0), DeriveSeed(1, 1), DeriveSeed(1, 2), DeriveSeed(1, 3),
	}
	for round := 0; round < 3; round++ {
		for i, w := range want {
			if got := DeriveSeed(1, i); got != w {
				t.Fatalf("DeriveSeed(1, %d) unstable: %d then %d", i, w, got)
			}
		}
	}
	seen := map[int64]int{}
	for base := int64(0); base < 8; base++ {
		for i := 0; i < 64; i++ {
			s := DeriveSeed(base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: DeriveSeed produced %d twice (prev key %d)", s, prev)
			}
			seen[s] = i
		}
	}
}

// TestForEachDeterministic runs a seed-deriving workload at several worker
// counts and requires byte-identical collected output.
func TestForEachDeterministic(t *testing.T) {
	const n = 64
	run := func(workers int) []float64 {
		out := make([]float64, n)
		if err := ForEach(workers, n, func(i int) error {
			rng := rand.New(rand.NewSource(DeriveSeed(42, i)))
			s := 0.0
			for j := 0; j < 100; j++ {
				s += rng.Float64()
			}
			out[i] = s
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	for _, w := range []int{2, 4, 8} {
		if got := run(w); !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d output differs from serial", w)
		}
	}
}

// TestForEachFirstError checks the error contract: the lowest-index error
// is returned regardless of scheduling, and later trials still run.
func TestForEachFirstError(t *testing.T) {
	for _, w := range []int{1, 4} {
		ran := make([]bool, 16)
		err := ForEach(w, 16, func(i int) error {
			ran[i] = true
			if i == 3 || i == 11 {
				return fmt.Errorf("trial %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "trial 3 failed" {
			t.Fatalf("workers=%d: got error %v, want trial 3's", w, err)
		}
		for i, r := range ran {
			if !r {
				t.Fatalf("workers=%d: index %d never ran", w, i)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return fmt.Errorf("must not run") }); err != nil {
		t.Fatal(err)
	}
}
