package parallel

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-5); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-5) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
}

// TestDeriveSeedStable pins the derivation: these values are part of the
// replay contract — changing them silently re-seeds every recorded
// multi-trial experiment.
func TestDeriveSeedStable(t *testing.T) {
	want := []int64{
		DeriveSeed(1, 0), DeriveSeed(1, 1), DeriveSeed(1, 2), DeriveSeed(1, 3),
	}
	for round := 0; round < 3; round++ {
		for i, w := range want {
			if got := DeriveSeed(1, i); got != w {
				t.Fatalf("DeriveSeed(1, %d) unstable: %d then %d", i, w, got)
			}
		}
	}
	seen := map[int64]int{}
	for base := int64(0); base < 8; base++ {
		for i := 0; i < 64; i++ {
			s := DeriveSeed(base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: DeriveSeed produced %d twice (prev key %d)", s, prev)
			}
			seen[s] = i
		}
	}
}

// TestForEachDeterministic runs a seed-deriving workload at several worker
// counts and requires byte-identical collected output.
func TestForEachDeterministic(t *testing.T) {
	const n = 64
	run := func(workers int) []float64 {
		out := make([]float64, n)
		if err := ForEach(workers, n, func(i int) error {
			rng := rand.New(rand.NewSource(DeriveSeed(42, i)))
			s := 0.0
			for j := 0; j < 100; j++ {
				s += rng.Float64()
			}
			out[i] = s
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	for _, w := range []int{2, 4, 8} {
		if got := run(w); !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d output differs from serial", w)
		}
	}
}

// TestForEachFirstError checks the error contract: the lowest-index error
// is returned regardless of scheduling, and later trials still run.
func TestForEachFirstError(t *testing.T) {
	for _, w := range []int{1, 4} {
		ran := make([]bool, 16)
		err := ForEach(w, 16, func(i int) error {
			ran[i] = true
			if i == 3 || i == 11 {
				return fmt.Errorf("trial %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "trial 3 failed" {
			t.Fatalf("workers=%d: got error %v, want trial 3's", w, err)
		}
		for i, r := range ran {
			if !r {
				t.Fatalf("workers=%d: index %d never ran", w, i)
			}
		}
	}
}

// TestForEachCtxCancelMidSweep is the cancellation regression test: a sweep
// cancelled partway through must stop starting new indices, return
// context.Canceled, and still report a genuine lower-index error in
// preference to the cancellation.
func TestForEachCtxCancelMidSweep(t *testing.T) {
	for _, w := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int64
		const n = 1000
		err := ForEachCtx(ctx, w, n, func(i int) error {
			if started.Add(1) == 8 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", w, err)
		}
		// The cancel must actually cut the sweep short, not merely change
		// the return value after all n indices ran. Allow the in-flight
		// window: every worker may start at most one index post-cancel.
		if got := started.Load(); got >= n {
			t.Fatalf("workers=%d: all %d indices started despite cancellation", w, got)
		}
	}
}

// TestForEachCtxErrorBeatsCancel pins the aggregation order: an fn error at
// a lower index wins over the cancellation recorded at a higher one.
func TestForEachCtxErrorBeatsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := fmt.Errorf("trial 2 failed")
	err := ForEachCtx(ctx, 1, 16, func(i int) error {
		if i == 2 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the index-2 error", err)
	}
}

// TestForEachCtxNilSafe: a background context must reproduce ForEach exactly.
func TestForEachCtxBackground(t *testing.T) {
	out := make([]int, 8)
	if err := ForEachCtx(context.Background(), 4, 8, func(i int) error {
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return fmt.Errorf("must not run") }); err != nil {
		t.Fatal(err)
	}
}
