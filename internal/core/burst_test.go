package core

import (
	"testing"
	"time"

	"spineless/internal/netsim"
	"spineless/internal/workload"
)

// TestBurstFlatDrainsFaster pins the §3 microburst claim: a flat network's
// bursting rack drains through all its network links, so its drain time
// beats the leaf-spine's oversubscribed uplinks by roughly the UDF.
func TestBurstFlatDrainsFaster(t *testing.T) {
	fs := tinyFabrics(t)
	spec := workload.BurstSpec{
		BurstBytes:   24 << 20,
		Fanout:       4,
		FlowsPerDest: 4,
	}
	net := netsim.DefaultConfig()
	net.MaxSimTime = 10 * time.Second

	ls, err := NewCombo("leaf-spine", fs.LeafSpine, "ecmp")
	if err != nil {
		t.Fatal(err)
	}
	flat, err := NewCombo("rrg", fs.RRG, "su2")
	if err != nil {
		t.Fatal(err)
	}
	lsRes, err := RunBurst(ls, spec, net, 1)
	if err != nil {
		t.Fatal(err)
	}
	flatRes, err := RunBurst(flat, spec, net, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lsRes.Incomplete != 0 || flatRes.Incomplete != 0 {
		t.Fatalf("incomplete burst flows: ls=%d flat=%d", lsRes.Incomplete, flatRes.Incomplete)
	}
	// Leaf-spine drain floor: burst bytes over the rack's y×10G uplinks.
	// Flat drain floor: the same bytes over ≈2y×10G links. Expect a clear
	// gap, at least 1.3× (the full UDF=2 needs perfect balancing).
	ratio := lsRes.DrainMS / flatRes.DrainMS
	if ratio < 1.3 {
		t.Fatalf("flat drain advantage = %.2f× (ls %.2fms vs flat %.2fms), want > 1.3×",
			ratio, lsRes.DrainMS, flatRes.DrainMS)
	}
	if ratio > 4 {
		t.Fatalf("implausible drain advantage %.2f×", ratio)
	}
	// Sanity: leaf-spine drain cannot beat its uplink serialization floor.
	floorMS := float64(spec.BurstBytes) * 8 / (float64(fs.LeafSpineSpec.Y) * 10e9) * 1e3
	if lsRes.DrainMS < floorMS*0.95 {
		t.Fatalf("leaf-spine drained %.2fms, below its physical floor %.2fms", lsRes.DrainMS, floorMS)
	}
}

func TestBurstValidation(t *testing.T) {
	fs := tinyFabrics(t)
	combo, err := NewCombo("x", fs.DRing, "ecmp")
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.DefaultConfig()
	if _, err := RunBurst(combo, workload.BurstSpec{BurstBytes: 1, Fanout: 99, FlowsPerDest: 1}, net, 1); err == nil {
		t.Fatal("fanout beyond racks accepted")
	}
	if _, err := RunBurst(combo, workload.BurstSpec{BurstBytes: 0, Fanout: 2, FlowsPerDest: 1}, net, 1); err == nil {
		t.Fatal("empty burst accepted")
	}
}

func TestBurstBackgroundSplit(t *testing.T) {
	fs := tinyFabrics(t)
	spec := workload.DefaultBurst()
	spec.BurstBytes = 1 << 20
	spec.Fanout = 3
	spec.BackgroundFlows = 10
	flows, burstN, err := workload.Burst(fs.DRing, spec, int64(time.Millisecond), testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if burstN != spec.Fanout*spec.FlowsPerDest {
		t.Fatalf("burstN = %d", burstN)
	}
	if len(flows) != burstN+10 {
		t.Fatalf("total flows = %d", len(flows))
	}
	srcRack := fs.DRing.RackOf(flows[0].Src)
	for i := 0; i < burstN; i++ {
		if flows[i].StartNS != 0 {
			t.Fatal("burst flow does not start at t=0")
		}
		if fs.DRing.RackOf(flows[i].Src) != srcRack {
			t.Fatal("burst flows from multiple racks")
		}
		if fs.DRing.RackOf(flows[i].Dst) == srcRack {
			t.Fatal("burst flow targets its own rack")
		}
	}
}
