package core

import (
	"math/rand"
	"time"

	"spineless/internal/metrics"
	"spineless/internal/netsim"
	"spineless/internal/workload"
)

// BurstResult reports a microburst drain measurement on one combo.
type BurstResult struct {
	Combo string
	// DrainMS is the time until the last burst flow completes — how long
	// the bursting rack needs to evacuate its data (§3's microburst
	// argument: flat ToRs can use all their network links for it).
	DrainMS float64
	// BurstP99MS is the 99th-percentile burst-flow FCT.
	BurstP99MS float64
	Incomplete int
	Stats      netsim.Stats
}

// RunBurst fires the §3 microburst at a combo and measures drain time.
func RunBurst(combo Combo, spec workload.BurstSpec, net netsim.Config, seed int64) (BurstResult, error) {
	rng := rand.New(rand.NewSource(seed))
	flows, burstN, err := workload.Burst(combo.Fabric, spec, int64(time.Millisecond), rng)
	if err != nil {
		return BurstResult{}, err
	}
	sim, err := netsim.New(combo.Fabric, combo.Scheme, net)
	if err != nil {
		return BurstResult{}, err
	}
	res, err := sim.Run(flows)
	if err != nil {
		return BurstResult{}, err
	}
	out := BurstResult{Combo: combo.Label, Stats: res.Stats}
	var drain int64
	for i := 0; i < burstN; i++ {
		f := res.FCTNS[i]
		if f < 0 {
			out.Incomplete++
			continue
		}
		if f > drain {
			drain = f
		}
	}
	out.DrainMS = float64(drain) / 1e6
	out.BurstP99MS = metrics.SummarizeFCT(res.FCTNS[:burstN]).P99MS
	return out, nil
}
