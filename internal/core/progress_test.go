package core

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// TestRunFCTOnTrialProgress checks the progress feed contract: OnTrial fires
// once per trial with a monotone done counter reaching Trials, and the
// progress hook never changes the pooled result.
func TestRunFCTOnTrialProgress(t *testing.T) {
	fs := tinyFabrics(t)
	combo, err := NewCombo("dring", fs.DRing, "su2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastFCTConfig()
	cfg.MaxFlows = 40
	cfg.Trials = 3
	cfg.Workers = 2

	var mu sync.Mutex
	var dones []int
	cfg.OnTrial = func(done, total int) {
		if total != 3 {
			t.Errorf("OnTrial total = %d, want 3", total)
		}
		mu.Lock()
		dones = append(dones, done)
		mu.Unlock()
	}
	withHook, err := RunFCT(fs, combo, TMA2A, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(dones) != 3 {
		t.Fatalf("OnTrial fired %d times, want 3 (%v)", len(dones), dones)
	}
	seen := map[int]bool{}
	for _, d := range dones {
		if d < 1 || d > 3 || seen[d] {
			t.Fatalf("OnTrial done counter not a permutation of 1..3: %v", dones)
		}
		seen[d] = true
	}

	cfg.OnTrial = nil
	plain, err := RunFCT(fs, combo, TMA2A, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if withHook.Stats != plain.Stats || withHook.SimStats != plain.SimStats {
		t.Fatalf("progress hook changed the result: %+v vs %+v", withHook.Stats, plain.Stats)
	}
}

// TestRunFCTSingleWindowProgress: Trials <= 1 reports exactly (1, 1).
func TestRunFCTSingleWindowProgress(t *testing.T) {
	fs := tinyFabrics(t)
	combo, err := NewCombo("rrg", fs.RRG, "ecmp")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastFCTConfig()
	cfg.MaxFlows = 30
	var calls [][2]int
	cfg.OnTrial = func(done, total int) { calls = append(calls, [2]int{done, total}) }
	if _, err := RunFCT(fs, combo, TMA2A, cfg); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 1 || calls[0] != [2]int{1, 1} {
		t.Fatalf("single-window progress = %v, want [[1 1]]", calls)
	}
}

// TestRunFCTCancelled: a context cancelled before the run starts surfaces
// the context error instead of a partial pool.
func TestRunFCTCancelled(t *testing.T) {
	fs := tinyFabrics(t)
	combo, err := NewCombo("dring", fs.DRing, "su2")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, trials := range []int{1, 4} {
		cfg := fastFCTConfig()
		cfg.MaxFlows = 30
		cfg.Trials = trials
		cfg.Ctx = ctx
		if _, err := RunFCT(fs, combo, TMA2A, cfg); !errors.Is(err, context.Canceled) {
			t.Fatalf("trials=%d: got %v, want context.Canceled", trials, err)
		}
	}
}

// TestRunFCTCancelMidTrials cancels from inside the progress hook: no new
// trial may start after the cancel, and the error is the cancellation.
func TestRunFCTCancelMidTrials(t *testing.T) {
	fs := tinyFabrics(t)
	combo, err := NewCombo("rrg", fs.RRG, "ecmp")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := fastFCTConfig()
	cfg.MaxFlows = 20
	cfg.Trials = 64
	cfg.Workers = 2
	cfg.Ctx = ctx
	var fired int
	var mu sync.Mutex
	cfg.OnTrial = func(done, total int) {
		mu.Lock()
		fired++
		if fired == 2 {
			cancel()
		}
		mu.Unlock()
	}
	if _, err := RunFCT(fs, combo, TMA2A, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if fired >= 64 {
		t.Fatalf("all %d trials ran despite mid-sweep cancel", fired)
	}
}
