package core

import (
	"fmt"
	"math/rand"

	"spineless/internal/flowsim"
	"spineless/internal/metrics"
	"spineless/internal/parallel"
	"spineless/internal/routing"
	"spineless/internal/workload"
)

// ThroughputConfig parameterizes a Figure 5-style C-S throughput study.
type ThroughputConfig struct {
	// FlowsPerHost controls sampling density: the number of long-running
	// flows is FlowsPerHost × max(C, S).
	FlowsPerHost int
	Link         flowsim.Config
	Seed         int64
	// Workers bounds cell-level parallelism in CSRatioHeatmap (0 = one per
	// CPU). Every cell reseeds independently from Seed, so the heatmap is
	// bit-identical at any worker count.
	Workers int
}

// DefaultThroughputConfig uses 10 Gbps links and 2 flows per host.
func DefaultThroughputConfig() ThroughputConfig {
	return ThroughputConfig{FlowsPerHost: 2, Link: flowsim.DefaultConfig(), Seed: 1}
}

// CSThroughput measures aggregate max-min throughput of a C-S pattern with
// C clients and S servers on one combo.
func CSThroughput(combo Combo, c, s int, cfg ThroughputConfig) (float64, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	cs, err := workload.CSModel(combo.Fabric, c, s, rng)
	if err != nil {
		return 0, err
	}
	nf := cfg.FlowsPerHost * max(c, s)
	if nf < 1 {
		nf = 1
	}
	pairs := workload.CSPairs(cs, nf, rng)
	_, agg, err := flowsim.Throughput(combo.Fabric, combo.Scheme, pairs, cfg.Link)
	return agg, err
}

// CSRatioHeatmap fills one Figure 5 panel: for every (C, S) tick pair it
// computes throughput(numerator combo)/throughput(denominator combo) — the
// paper plots DRing/leaf-spine. Both sides see the same seeds, so the C-S
// packings are sampled identically.
//
// Cells are independent (each CSThroughput reseeds from cfg.Seed) and write
// disjoint heatmap slots, so they run in parallel across cfg.Workers with
// output identical to the serial double loop. Lazily-built scheme state is
// pre-warmed first so workers never contend on a cache mutex.
func CSRatioHeatmap(num, den Combo, clients, servers []int, cfg ThroughputConfig) (*metrics.Heatmap, error) {
	h := metrics.NewHeatmap(
		fmt.Sprintf("throughput(%s) / throughput(%s)", num.Label, den.Label),
		"#servers", "#clients", servers, clients)
	if parallel.Workers(cfg.Workers) > 1 {
		for _, combo := range []Combo{num, den} {
			if pw, ok := combo.Scheme.(routing.Prewarmer); ok {
				pw.Prewarm()
			}
			combo.Fabric.Reindex() // lazy server index is a write; build it pre-fork
		}
	}
	err := parallel.ForEach(cfg.Workers, len(clients)*len(servers), func(i int) error {
		yi, xi := i/len(servers), i%len(servers)
		c, s := clients[yi], servers[xi]
		a, err := CSThroughput(num, c, s, cfg)
		if err != nil {
			return fmt.Errorf("core: %s C=%d S=%d: %w", num.Label, c, s, err)
		}
		b, err := CSThroughput(den, c, s, cfg)
		if err != nil {
			return fmt.Errorf("core: %s C=%d S=%d: %w", den.Label, c, s, err)
		}
		h.Set(xi, yi, metrics.Ratio(a, b))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return h, nil
}
