// Package core orchestrates the paper's experiments over the substrates:
// it builds the §5.1 equipment-matched fabric trio (leaf-spine, RRG, DRing),
// wires the §5.2 workloads to them, and runs the FCT (Figure 4), C-S
// throughput (Figure 5), scale (Figure 6) and UDF (§3.1) studies.
package core

import (
	"fmt"
	"math/rand"

	"spineless/internal/topology"
)

// FabricSet is the §5.1 trio: a leaf-spine baseline plus the two flat
// networks built with the same equipment — a random regular graph (the
// Jellyfish rewiring) and a DRing.
type FabricSet struct {
	LeafSpineSpec topology.LeafSpineSpec
	DRingSpec     topology.DRingSpec

	LeafSpine *topology.Graph
	RRG       *topology.Graph
	DRing     *topology.Graph
}

// BuildFabrics constructs the trio from a leaf-spine spec. The RRG is the
// flat rewiring of the exact same equipment (§5.1); the DRing uses the same
// switches arranged into the given number of supernodes (the paper uses 12,
// yielding 80 racks and ≈2988 servers against leaf-spine(48,16)). Pass
// supernodes <= 0 to pick the count that best matches the leaf-spine's
// server total, which is how the paper chose 12.
func BuildFabrics(spec topology.LeafSpineSpec, supernodes int, rng *rand.Rand) (*FabricSet, error) {
	ls, err := topology.LeafSpine(spec)
	if err != nil {
		return nil, fmt.Errorf("core: leaf-spine: %w", err)
	}
	rrg, err := topology.Flatten(ls, rng)
	if err != nil {
		return nil, fmt.Errorf("core: flat rewiring: %w", err)
	}
	rrg.Name = fmt.Sprintf("rrg(%s)", ls.Name)
	if supernodes <= 0 {
		supernodes = AutoSupernodes(spec)
	}
	dspec := topology.BalancedDRing(spec.Switches(), supernodes, spec.Radix())
	// Feasibility: every ToR needs at least one server port. Grow the ring
	// (smaller supernodes → smaller network degree) until it fits.
	for dspec.Validate() != nil && supernodes < spec.Switches() {
		supernodes++
		dspec = topology.BalancedDRing(spec.Switches(), supernodes, spec.Radix())
	}
	dr, err := topology.DRing(dspec)
	if err != nil {
		return nil, fmt.Errorf("core: dring: %w", err)
	}
	return &FabricSet{
		LeafSpineSpec: spec,
		DRingSpec:     dspec,
		LeafSpine:     ls,
		RRG:           rrg,
		DRing:         dr,
	}, nil
}

// PaperFabrics builds the exact §5.1 configuration: leaf-spine(48,16) and
// its 12-supernode DRing and RRG rewirings.
func PaperFabrics(rng *rand.Rand) (*FabricSet, error) {
	return BuildFabrics(topology.PaperLeafSpine, 12, rng)
}

// AutoSupernodes picks the supernode count whose DRing server total best
// matches the leaf-spine's: servers per ToR is radix − 4·(switches/m), so
// m ≈ 4·switches / (radix − flatServersPerSwitch). For leaf-spine(48,16)
// this yields the paper's 12.
func AutoSupernodes(spec topology.LeafSpineSpec) int {
	n := float64(spec.Switches())
	flatPerSwitch := float64(spec.TotalServers()) / n
	spare := float64(spec.Radix()) - flatPerSwitch
	if spare <= 0 {
		return spec.Switches()
	}
	m := int(4*n/spare + 0.5)
	if m < 5 {
		m = 5
	}
	if m > spec.Switches() {
		m = spec.Switches()
	}
	return m
}

// ScaledFabrics builds a proportionally scaled-down trio that preserves the
// 3:1 oversubscription and the DRing geometry, for fast tests and benches.
// factor 4 yields leaf-spine(12,4): 16 racks, 192 servers, 20 switches.
func ScaledFabrics(factor int, rng *rand.Rand) (*FabricSet, error) {
	if factor < 1 || 48%factor != 0 || 16%factor != 0 {
		return nil, fmt.Errorf("core: scale factor %d must divide 48 and 16", factor)
	}
	spec := topology.LeafSpineSpec{X: 48 / factor, Y: 16 / factor}
	return BuildFabrics(spec, 0, rng)
}

// FlatFabricNames lists the flat topologies FlatFabric can build beyond the
// §5.1 trio, in the order the bake-off reports them.
var FlatFabricNames = []string{"xpander", "debruijn", "rng"}

// FlatFabric builds one of the competing flat fabrics on a given equipment
// budget: `switches` radix-`ports` switches spending `degree` ports each on
// the network, with `servers` total servers as the attachment target.
//
//   - "xpander": 2-lift expander; the lift construction rounds the switch
//     count up to (degree+1)·2^j, and servers scale with it so per-switch
//     density (and thus per-server load in a comparison) is preserved.
//   - "debruijn": the closest-fitting De Bruijn graph (FitDeBruijn); its
//     regularized degree is set by the alphabet, and every spare port hosts
//     a server.
//   - "rng": AWS's union-of-matchings fabric at exactly the requested
//     degree; every spare port hosts a server.
//
// The actual switch and server counts therefore differ slightly from the
// request — callers compare fabrics per server, and the bake-off scorecard
// reports the realized equipment so the deltas stay visible.
func FlatFabric(name string, switches, degree, ports, servers int, rng *rand.Rand) (*topology.Graph, error) {
	switch name {
	case "xpander":
		g, err := topology.Xpander(switches, degree, rng)
		if err != nil {
			return nil, err
		}
		if err := topology.AttachServersEvenly(g, servers*g.N()/switches, ports); err != nil {
			return nil, err
		}
		return g, nil
	case "debruijn":
		spec, err := topology.FitDeBruijn(switches, ports, degree)
		if err != nil {
			return nil, err
		}
		return topology.DeBruijn(spec)
	case "rng":
		return topology.RNG(topology.RNGSpec{Switches: switches, Degree: degree, Ports: ports}, rng)
	default:
		return nil, fmt.Errorf("core: unknown flat fabric %q (want xpander, debruijn or rng)", name)
	}
}

// ExtraFabric builds one of the FlatFabricNames fabrics on the same
// equipment budget as a FabricSet's leaf-spine: its switch count and radix,
// its server total, and the network degree that equipment implies for a
// flat fabric (radix minus the per-switch server share). This is how the
// fleet and the figure drivers extend the §5.1 trio to the bake-off five.
func ExtraFabric(fs *FabricSet, name string, seed int64) (*topology.Graph, error) {
	spec := fs.LeafSpineSpec
	n, ports, servers := spec.Switches(), spec.Radix(), spec.TotalServers()
	perSwitch := (servers + n - 1) / n
	return FlatFabric(name, n, ports-perSwitch, ports, servers, rand.New(rand.NewSource(seed)))
}

// MatchedRRG builds a random regular graph using the same equipment as an
// existing flat fabric: identical switch count, radix, per-switch server
// counts, and network degree distribution. Used by the Figure 6 scale sweep
// to compare a DRing to its "equivalent RRG".
func MatchedRRG(g *topology.Graph, rng *rand.Rand) (*topology.Graph, error) {
	degrees := make([]int, g.N())
	for v := range degrees {
		degrees[v] = g.NetworkDegree(v)
	}
	r, err := topology.RRG(fmt.Sprintf("rrg-matched(%s)", g.Name), degrees, rng)
	if err != nil {
		return nil, err
	}
	r.Ports = g.Ports
	for v := 0; v < g.N(); v++ {
		r.SetServers(v, g.ServerCount(v))
	}
	return r, nil
}
