package core

import (
	"fmt"
	"strings"
)

// TrialError records one failed trial of a sweep.
type TrialError struct {
	Label string
	Err   error
}

func (e TrialError) Error() string { return e.Label + ": " + e.Err.Error() }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e TrialError) Unwrap() error { return e.Err }

// TrialErrors aggregates the failures of a sweep whose surviving trials
// still produced results.
type TrialErrors []TrialError

func (es TrialErrors) Error() string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.Error()
	}
	return fmt.Sprintf("%d trial(s) failed: %s", len(es), strings.Join(parts, "; "))
}

// Trial runs one experiment trial, converting panics into errors so a
// pathological configuration (a disconnected rack pair, an infeasible
// topology) marks that trial failed instead of aborting the whole sweep.
// The sweep stays deterministic: a failed trial consumes exactly the same
// inputs it would have on success.
func Trial(label string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = TrialError{Label: label, Err: fmt.Errorf("panic: %v", r)}
		}
	}()
	if e := fn(); e != nil {
		return TrialError{Label: label, Err: e}
	}
	return nil
}
