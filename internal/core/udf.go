package core

import (
	"fmt"
	"math/rand"

	"spineless/internal/metrics"
	"spineless/internal/topology"
)

// UDFRow is one line of the §3.1 analysis: a leaf-spine configuration, its
// analytic NSRs and UDF, and the empirical UDF measured on an actual flat
// rewiring of the same equipment.
type UDFRow struct {
	Spec              topology.LeafSpineSpec
	NSRBase, NSRFlat  float64
	UDFAnalytic       float64
	UDFEmpirical      float64
	Racks, FlatRacks  int
	Servers           int
	FlatServersPerTor float64
}

// UDFStudy computes the §3.1 table for a set of leaf-spine configurations,
// pinning UDF = 2 analytically and measuring it on concrete rewirings.
func UDFStudy(specs []topology.LeafSpineSpec, rng *rand.Rand) ([]UDFRow, error) {
	out := make([]UDFRow, 0, len(specs))
	for _, spec := range specs {
		base, err := topology.LeafSpine(spec)
		if err != nil {
			return nil, err
		}
		flat, err := topology.Flatten(base, rng)
		if err != nil {
			return nil, err
		}
		emp, err := topology.UDF(base, flat)
		if err != nil {
			return nil, err
		}
		nsrB, nsrF, udf := topology.UDFLeafSpineAnalytic(spec)
		out = append(out, UDFRow{
			Spec:              spec,
			NSRBase:           nsrB,
			NSRFlat:           nsrF,
			UDFAnalytic:       udf,
			UDFEmpirical:      emp,
			Racks:             len(base.Racks()),
			FlatRacks:         len(flat.Racks()),
			Servers:           base.Servers(),
			FlatServersPerTor: float64(flat.Servers()) / float64(flat.N()),
		})
	}
	return out, nil
}

// UDFTable renders a UDF study as a text table.
func UDFTable(rows []UDFRow) string {
	var t metrics.Table
	t.AddRow("leaf-spine", "racks", "servers", "NSR(T)", "NSR(F(T))", "UDF analytic", "UDF measured")
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("(%d,%d)", r.Spec.X, r.Spec.Y),
			fmt.Sprintf("%d", r.Racks),
			fmt.Sprintf("%d", r.Servers),
			fmt.Sprintf("%.4f", r.NSRBase),
			fmt.Sprintf("%.4f", r.NSRFlat),
			fmt.Sprintf("%.4f", r.UDFAnalytic),
			fmt.Sprintf("%.4f", r.UDFEmpirical),
		)
	}
	return t.String()
}
