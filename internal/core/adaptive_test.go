package core

import (
	"math/rand"
	"strings"
	"testing"

	"spineless/internal/routing"
	"spineless/internal/workload"
)

func TestNewAdaptiveComboValidation(t *testing.T) {
	fs := tinyFabrics(t)
	m := workload.Uniform(len(fs.DRing.Racks()))
	if _, err := NewAdaptiveCombo("x", fs.DRing, m, AdaptiveConfig{K: 1, HotFactor: 4}); err == nil {
		t.Fatal("K=1 accepted")
	}
	if _, err := NewAdaptiveCombo("x", fs.DRing, m, AdaptiveConfig{K: 2, HotFactor: 0}); err == nil {
		t.Fatal("zero HotFactor accepted")
	}
	if _, err := NewAdaptiveCombo("x", fs.DRing, workload.Uniform(3), DefaultAdaptiveConfig()); err == nil {
		t.Fatal("rack mismatch accepted")
	}
}

func TestAdaptiveUsesSUForHotPairs(t *testing.T) {
	fs := tinyFabrics(t)
	g := fs.DRing
	racks := g.Racks()
	// R2R: the single demand pair is hot by construction.
	var src, dst int
	for _, r := range racks {
		for _, q := range racks {
			if r != q && g.HasLink(r, q) {
				src, dst = r, q
			}
		}
	}
	m := workload.NewMatrix("r2r", len(racks))
	ri := map[int]int{}
	for i, r := range racks {
		ri[r] = i
	}
	m.W[ri[src]][ri[dst]] = 1

	combo, err := NewAdaptiveCombo("adaptive", g, m, DefaultAdaptiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(combo.Scheme.Name(), "adaptive") {
		t.Fatalf("name = %q", combo.Scheme.Name())
	}
	// Hot adjacent pair gets SU(2)'s multiple paths.
	if n := len(combo.Scheme.PathSet(src, dst, 0)); n < 2 {
		t.Fatalf("hot adjacent pair has %d paths, want SU(2) diversity", n)
	}
	// A cold non-adjacent pair keeps shortest-only paths (ECMP).
	ecmp := routing.NewECMP(g)
	for _, r := range racks {
		for _, q := range racks {
			if r == q || g.HasLink(r, q) || (r == src && q == dst) {
				continue
			}
			got := combo.Scheme.PathSet(r, q, 0)
			want := ecmp.PathSet(r, q, 0)
			if len(got) != len(want) {
				t.Fatalf("cold pair %d→%d: adaptive %d paths, ecmp %d", r, q, len(got), len(want))
			}
			return
		}
	}
}

func TestAdaptiveMatchesECMPOnUniform(t *testing.T) {
	fs := tinyFabrics(t)
	g := fs.DRing
	m := workload.Uniform(len(g.Racks()))
	combo, err := NewAdaptiveCombo("adaptive", g, m, DefaultAdaptiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Under uniform demand nothing exceeds 4× the mean; only physically
	// adjacent pairs are escalated. Distant pairs behave exactly like ECMP.
	ecmp := routing.NewECMP(g)
	racks := g.Racks()
	checked := 0
	for _, r := range racks {
		for _, q := range racks {
			if r == q || g.HasLink(r, q) {
				continue
			}
			for f := uint64(0); f < 5; f++ {
				a := combo.Scheme.Path(r, q, f)
				b := ecmp.Path(r, q, f)
				if len(a) != len(b) {
					t.Fatalf("pair %d→%d flow %d: adaptive len %d, ecmp len %d", r, q, f, len(a), len(b))
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no non-adjacent pairs checked")
	}
}

// TestAdaptiveBestOfBothFCT pins the §7 hypothesis: the adaptive scheme
// tracks the better of ECMP and SU(2) on the patterns where they diverge.
func TestAdaptiveBestOfBothFCT(t *testing.T) {
	fs := tinyFabrics(t)
	g := fs.DRing
	cfg := fastFCTConfig()

	run := func(kind TMKind, combo Combo) float64 {
		t.Helper()
		res, err := RunFCT(fs, combo, kind, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.P99MS
	}
	for _, kind := range []TMKind{TMA2A, TMR2R} {
		// RunFCT regenerates the TM internally from cfg.Seed; build the
		// adaptive hot-pair analysis from the identical stream so the hot
		// set matches the simulated demand.
		m, _, err := BuildTM(kind, g, rand.New(rand.NewSource(cfg.Seed)))
		if err != nil {
			t.Fatal(err)
		}
		adaptive, err := NewAdaptiveCombo("adaptive", g, m, DefaultAdaptiveConfig())
		if err != nil {
			t.Fatal(err)
		}
		ecmp, err := NewCombo("ecmp", g, "ecmp")
		if err != nil {
			t.Fatal(err)
		}
		su2, err := NewCombo("su2", g, "su2")
		if err != nil {
			t.Fatal(err)
		}
		pa := run(kind, adaptive)
		pe := run(kind, ecmp)
		ps := run(kind, su2)
		best := min(pe, ps)
		worst := max(pe, ps)
		if pa > worst*1.3 {
			t.Fatalf("%s: adaptive p99 %.3f worse than both ECMP %.3f and SU2 %.3f", kind, pa, pe, ps)
		}
		t.Logf("%s: adaptive %.3f, ecmp %.3f, su2 %.3f (best %.3f)", kind, pa, pe, ps, best)
	}
}
