package core

import (
	"reflect"
	"testing"

	"spineless/internal/workload"
)

// These tests pin the determinism-under-parallelism contract of every
// converted fan-out in this package: the same config run with workers=1 and
// workers=8 must produce bit-identical result structs, including simulator
// stat counters and raw per-flow data.

func TestRunFCTTrialsParallelEqualsSerial(t *testing.T) {
	fs := tinyFabrics(t)
	combo, err := NewCombo("dring", fs.DRing, "su2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastFCTConfig()
	cfg.MaxFlows = 60
	cfg.Trials = 4
	cfg.KeepFlows = true // compare raw flows and FCTs too

	cfg.Workers = 1
	serial, err := RunFCT(fs, combo, TMA2A, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	par, err := RunFCT(fs, combo, TMA2A, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("RunFCT trials: workers=8 differs from workers=1\nserial: %+v\npar:    %+v", serial, par)
	}
	if serial.Flows <= 0 || serial.SimStats.DataPackets == 0 {
		t.Fatalf("degenerate pooled result: %+v", serial)
	}
}

func TestRunFCTMatrixTrialsParallelEqualsSerial(t *testing.T) {
	fs := tinyFabrics(t)
	combo, err := NewCombo("rrg", fs.RRG, "ecmp")
	if err != nil {
		t.Fatal(err)
	}
	m := workload.Uniform(len(fs.RRG.Racks()))
	cfg := fastFCTConfig()
	cfg.MaxFlows = 60
	cfg.Trials = 3
	cfg.Workers = 1
	serial, err := RunFCTMatrix(fs, combo, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	par, err := RunFCTMatrix(fs, combo, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("RunFCTMatrix trials: workers=8 differs from workers=1")
	}
}

// TestRunFCTSingleTrialMatchesLegacy pins backward compatibility: Trials=0
// and Trials=1 must both reproduce the classic single-window result exactly,
// regardless of Workers.
func TestRunFCTSingleTrialMatchesLegacy(t *testing.T) {
	fs := tinyFabrics(t)
	combo, err := NewCombo("ls", fs.LeafSpine, "ecmp")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastFCTConfig()
	cfg.MaxFlows = 60
	base, err := RunFCT(fs, combo, TMA2A, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, trials := range []int{0, 1} {
		c := cfg
		c.Trials = trials
		c.Workers = 8
		got, err := RunFCT(fs, combo, TMA2A, c)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("Trials=%d Workers=8 differs from the legacy single window", trials)
		}
	}
}

func TestFig4RowParallelEqualsSerial(t *testing.T) {
	fs := tinyFabrics(t)
	combos, err := PaperCombos(fs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastFCTConfig()
	cfg.MaxFlows = 60
	cfg.Workers = 1
	serial, err := Fig4Row(fs, combos[:3], TMA2A, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	par, err := Fig4Row(fs, combos[:3], TMA2A, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatal("Fig4Row: workers=8 differs from workers=1")
	}
}

func TestCSRatioHeatmapParallelEqualsSerial(t *testing.T) {
	fs := tinyFabrics(t)
	dr, err := NewCombo("dring", fs.DRing, "su2")
	if err != nil {
		t.Fatal(err)
	}
	ls, err := NewCombo("ls", fs.LeafSpine, "ecmp")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultThroughputConfig()
	cfg.Workers = 1
	serial, err := CSRatioHeatmap(dr, ls, []int{2, 6}, []int{4, 8}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	par, err := CSRatioHeatmap(dr, ls, []int{2, 6}, []int{4, 8}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("CSRatioHeatmap: workers=8 differs from workers=1\nserial: %v\npar:    %v", serial.Cells, par.Cells)
	}
}

func TestScaleSweepParallelEqualsSerial(t *testing.T) {
	cfg := DefaultScaleConfig()
	cfg.TorsPerSupernode = 3
	cfg.Ports = 20
	cfg.FCT = fastFCTConfig()
	cfg.FCT.MaxFlows = 60
	cfg.Workers = 1
	serial, err := ScaleSweep([]int{5, 7}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	par, err := ScaleSweep([]int{5, 7}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("ScaleSweep: workers=8 differs from workers=1\nserial: %+v\npar:    %+v", serial, par)
	}
}
