package core

import (
	"fmt"

	"spineless/internal/routing"
	"spineless/internal/topology"
	"spineless/internal/workload"
)

// AdaptiveConfig controls the §7 coarse-grained adaptive composition.
type AdaptiveConfig struct {
	// K is the Shortest-Union K used for hot pairs.
	K int
	// HotFactor marks a rack pair hot when its demand exceeds HotFactor ×
	// the mean positive pair demand. R2R-like concentration trips it; A2A
	// never does.
	HotFactor float64
}

// DefaultAdaptiveConfig uses SU(2) for pairs at ≥4× the mean demand.
func DefaultAdaptiveConfig() AdaptiveConfig { return AdaptiveConfig{K: 2, HotFactor: 4} }

// NewAdaptiveCombo builds the adaptive scheme for a fabric under a known
// coarse demand matrix: hot rack pairs (by demand concentration) route via
// Shortest-Union(K) for diversity, everything else via plain ECMP for path
// length. Pairs that are physically adjacent and carry any demand also
// count as hot, since ECMP gives them exactly one path (§4).
func NewAdaptiveCombo(label string, g *topology.Graph, m *workload.Matrix, cfg AdaptiveConfig) (Combo, error) {
	if cfg.K < 2 {
		return Combo{}, fmt.Errorf("core: adaptive K must be >= 2")
	}
	if cfg.HotFactor <= 0 {
		return Combo{}, fmt.Errorf("core: adaptive HotFactor must be positive")
	}
	racks := g.Racks()
	if m.N() != len(racks) {
		return Combo{}, fmt.Errorf("core: matrix has %d racks, fabric has %d", m.N(), len(racks))
	}
	rackIdx := make(map[int]int, len(racks))
	for i, r := range racks {
		rackIdx[r] = i
	}
	// Mean positive demand.
	sum, n := 0.0, 0
	for i := range m.W {
		for j := range m.W {
			if m.W[i][j] > 0 {
				sum += m.W[i][j]
				n++
			}
		}
	}
	if n == 0 {
		return Combo{}, fmt.Errorf("core: empty demand matrix")
	}
	mean := sum / float64(n)

	hot := make(map[[2]int]bool)
	for i := range m.W {
		for j := range m.W {
			w := m.W[i][j]
			if w <= 0 {
				continue
			}
			si, sj := racks[i], racks[j]
			if w >= cfg.HotFactor*mean || g.HasLink(si, sj) {
				hot[[2]int{si, sj}] = true
			}
		}
	}

	ecmp := routing.NewECMP(g)
	su, err := routing.NewShortestUnion(g, cfg.K)
	if err != nil {
		return Combo{}, err
	}
	scheme := routing.NewAdaptive(
		fmt.Sprintf("adaptive(ecmp→su%d, hot=%d pairs)", cfg.K, len(hot)),
		ecmp, su,
		func(src, dst int) bool { return hot[[2]int{src, dst}] },
	)
	return Combo{Label: label, Fabric: g, Scheme: scheme}, nil
}
