package core

import (
	"strings"
	"testing"

	"spineless/internal/telemetry"
	"spineless/internal/workload"
)

// fastClasses is the three-tier mix scaled down so tiny-fabric tests
// finish quickly while still exercising every class.
func fastClasses() []workload.Class {
	return []workload.Class{
		{Name: "training", Share: 0.10, Sizes: workload.Fixed(80e3), SLAms: 20},
		{Name: "batch", Share: 0.30, Sizes: workload.Fixed(20e3), SLAms: 8},
		{Name: "latency", Share: 0.60, Sizes: workload.Fixed(2e3), SLAms: 2},
	}
}

// TestRunFCTTelemetryAndClasses runs the Poisson job-class workload over
// two parallel trials with a telemetry recorder attached and checks that
// (a) every trial bound a sink, (b) per-class goodput and the per-class
// FCT attribution both partition the run, and (c) attaching telemetry
// never changes the measured results.
func TestRunFCTTelemetryAndClasses(t *testing.T) {
	fs := tinyFabrics(t)
	combo, err := NewCombo("DRing su2", fs.DRing, "su2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastFCTConfig()
	cfg.JobClasses = fastClasses()
	cfg.Trials = 2
	cfg.Workers = 2
	cfg.MaxFlows = 80

	bare, err := RunFCT(fs, combo, TMA2A, cfg)
	if err != nil {
		t.Fatal(err)
	}

	rec := telemetry.NewRecorder(telemetry.Config{Classes: 3})
	cfg.Telemetry = rec
	res, err := RunFCT(fs, combo, TMA2A, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if res.Stats != bare.Stats || res.Flows != bare.Flows {
		t.Fatalf("telemetry changed results: %+v vs %+v", res.Stats, bare.Stats)
	}
	if rec.Sinks() != 2 {
		t.Fatalf("%d sinks bound, want one per trial", rec.Sinks())
	}
	if len(res.Classes) != 3 {
		t.Fatalf("class attribution has %d rows: %+v", len(res.Classes), res.Classes)
	}
	var classFlows int
	for _, c := range res.Classes {
		classFlows += c.Flows
	}
	if classFlows != res.Flows {
		t.Fatalf("class attribution covers %d of %d flows", classFlows, res.Flows)
	}

	sn := rec.Snapshot()
	if got, want := len(sn.Totals.GoodputBytes), 3; got != want {
		t.Fatalf("%d goodput classes, want %d", got, want)
	}
	var goodput uint64
	for ci, g := range sn.Totals.GoodputBytes {
		if res.Classes[ci].Completed > 0 && g == 0 {
			t.Fatalf("class %d completed %d flows but earned no goodput", ci, res.Classes[ci].Completed)
		}
		goodput += g
	}
	if goodput == 0 || sn.Totals.TxBytes == 0 {
		t.Fatalf("empty telemetry totals: %+v", sn.Totals)
	}
	if workload.ClassTable(res.Classes) == "" {
		t.Fatal("empty class table")
	}
}

// TestTelemetryShardsRejected is the failing-before guard test: before
// this guard existed, core only rejected Shards+Audit, so a tracer wired
// to a sharded run would have been silently ignored.
func TestTelemetryShardsRejected(t *testing.T) {
	fs := tinyFabrics(t)
	combo, err := NewCombo("ls", fs.LeafSpine, "ecmp")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastFCTConfig()
	cfg.Shards = 2
	cfg.Telemetry = telemetry.NewRecorder(telemetry.Config{})
	if _, err := RunFCT(fs, combo, TMA2A, cfg); err == nil {
		t.Fatal("Shards>0 with Telemetry was accepted — the tracer would be silently ignored")
	} else if !strings.Contains(err.Error(), "serial engine") {
		t.Fatalf("unhelpful error: %v", err)
	}

	// The same guard must hold on the multi-trial path.
	cfg.Trials = 2
	if _, err := RunFCT(fs, combo, TMA2A, cfg); err == nil {
		t.Fatal("Shards>0 with Telemetry accepted under Trials>1")
	}
}

// TestTelemetryAuditRejected: both observers need the simulator's single
// tracer slot; silently overwriting one with the other would void either
// the audit or the series.
func TestTelemetryAuditRejected(t *testing.T) {
	fs := tinyFabrics(t)
	combo, err := NewCombo("ls", fs.LeafSpine, "ecmp")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastFCTConfig()
	cfg.Audit = true
	cfg.Telemetry = telemetry.NewRecorder(telemetry.Config{})
	if _, err := RunFCT(fs, combo, TMA2A, cfg); err == nil {
		t.Fatal("Audit+Telemetry accepted — one observer would silently displace the other")
	}
}
