package core

import (
	"fmt"

	"spineless/internal/fluid"
	"spineless/internal/topology"
	"spineless/internal/workload"
)

// IdealThroughput computes the fluid-model maximum concurrent throughput of
// a rack-level matrix on a fabric: the largest λ (in units of link capacity)
// such that λ·W is routable by ideal fractional multipath routing. This is
// the §2 "fluid flow model with ideal routing" reference point [13, 22].
func IdealThroughput(g *topology.Graph, m *workload.Matrix, eps float64) (float64, error) {
	demands, err := fluid.MatrixDemands(g, m.W)
	if err != nil {
		return 0, err
	}
	return fluid.MaxConcurrentFlow(g, demands, fluid.Options{Epsilon: eps})
}

// RoutingEfficiency compares what an oblivious scheme realizes against the
// topology's ideal: it returns idealλ for the matrix on each fabric and the
// ratio idealλ(a)/idealλ(b) — used to separate topology effects from
// routing effects when two fabrics disagree in the packet simulator.
func RoutingEfficiency(a, b *topology.Graph, m *workload.Matrix, eps float64) (la, lb, ratio float64, err error) {
	la, err = IdealThroughput(a, m, eps)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("core: ideal on %s: %w", a.Name, err)
	}
	// The same rack-level matrix applies to b only if rack counts agree.
	if len(a.Racks()) != len(b.Racks()) {
		return 0, 0, 0, fmt.Errorf("core: fabrics have %d vs %d racks", len(a.Racks()), len(b.Racks()))
	}
	lb, err = IdealThroughput(b, m, eps)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("core: ideal on %s: %w", b.Name, err)
	}
	return la, lb, la / lb, nil
}
