package core

import (
	"fmt"
	"math/rand"

	"spineless/internal/topology"
	"spineless/internal/workload"
)

// TMKind names the seven Figure 4 traffic matrices (§5.2).
type TMKind string

// The Figure 4 workloads, left to right.
const (
	TMA2A         TMKind = "A2A"
	TMR2R         TMKind = "R2R"
	TMCSSkewed    TMKind = "CS-skewed" // C = n/4, S = n/16 in the C-S model
	TMFBSkewed    TMKind = "FB-skewed"
	TMFBUniform   TMKind = "FB-uniform"
	TMFBSkewedRP  TMKind = "FB-skewed-RP"
	TMFBUniformRP TMKind = "FB-uniform-RP"
)

// AllTMKinds lists the Figure 4 workloads in presentation order.
func AllTMKinds() []TMKind {
	return []TMKind{TMA2A, TMR2R, TMCSSkewed, TMFBSkewed, TMFBUniform, TMFBSkewedRP, TMFBUniformRP}
}

// BuildTM instantiates a workload kind on a fabric: the rack-level matrix
// plus an optional server placement permutation (non-nil only for the
// random-placement variants).
func BuildTM(kind TMKind, g *topology.Graph, rng *rand.Rand) (*workload.Matrix, []int, error) {
	racks := len(g.Racks())
	switch kind {
	case TMA2A:
		return workload.Uniform(racks), nil, nil
	case TMR2R:
		// Prefer a directly connected rack pair: rack-to-rack between
		// adjacent racks is the pattern where ECMP's single shortest path
		// hurts flat networks (§4, §7) — in a leaf-spine no racks are
		// adjacent and any pair behaves identically.
		a, b := r2rPair(g, rng)
		return workload.RackToRack(racks, a, b), nil, nil
	case TMCSSkewed:
		n := g.Servers()
		cs, err := workload.CSModel(g, max(1, n/4), max(1, n/16), rng)
		if err != nil {
			return nil, nil, fmt.Errorf("core: %s: %w", kind, err)
		}
		return workload.CSMatrix(g, cs), nil, nil
	case TMFBSkewed:
		return workload.FBSkewed(racks, rng), nil, nil
	case TMFBUniform:
		return workload.FBUniform(racks, rng), nil, nil
	case TMFBSkewedRP:
		return workload.FBSkewed(racks, rng), workload.RandomPlacement(g, rng), nil
	case TMFBUniformRP:
		return workload.FBUniform(racks, rng), workload.RandomPlacement(g, rng), nil
	default:
		return nil, nil, fmt.Errorf("core: unknown TM kind %q", kind)
	}
}

// r2rPair picks the rack-to-rack endpoints (as rack indices): a uniform
// random adjacent rack pair when the fabric has one, else a uniform random
// distinct pair.
func r2rPair(g *topology.Graph, rng *rand.Rand) (int, int) {
	racks := g.Racks()
	idx := make(map[int]int, len(racks))
	for i, r := range racks {
		idx[r] = i
	}
	var adjacent [][2]int
	for i, r := range racks {
		for _, q := range racks {
			if q != r && g.HasLink(r, q) {
				adjacent = append(adjacent, [2]int{i, idx[q]})
			}
		}
	}
	if len(adjacent) > 0 {
		p := adjacent[rng.Intn(len(adjacent))]
		return p[0], p[1]
	}
	a := rng.Intn(len(racks))
	b := rng.Intn(len(racks) - 1)
	if b >= a {
		b++
	}
	return a, b
}
