package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"

	"spineless/internal/audit"
	"spineless/internal/metrics"
	"spineless/internal/netsim"
	"spineless/internal/parallel"
	"spineless/internal/routing"
	"spineless/internal/telemetry"
	"spineless/internal/workload"
)

// FCTConfig parameterizes a Figure 4-style flow-completion-time experiment.
type FCTConfig struct {
	// Util is the offered load as a fraction of the reference leaf-spine's
	// spine capacity (the paper uses 0.30, §6.1).
	Util float64
	// WindowSec is the arrival window over which flows start.
	WindowSec float64
	// Sizes is the flow-size distribution (§5.2's Pareto by default).
	Sizes workload.SizeDist
	// Net is the packet-level simulator configuration.
	Net netsim.Config
	// MaxFlows caps the generated flow count (0 = uncapped) so scaled-down
	// studies stay tractable.
	MaxFlows int
	// Seed drives all sampling.
	Seed int64
	// Trials repeats the experiment over independently seeded arrival
	// windows and pools the per-flow FCTs (0 or 1 = the classic single
	// window driven directly by Seed). Trial t derives its seed as
	// parallel.DeriveSeed(Seed, t), never by sharing a rand.Rand, so the
	// pooled result is bit-identical at any worker count.
	Trials int
	// Workers bounds trial-level parallelism (0 = one per CPU). A pure
	// throughput knob: it never affects results.
	Workers int
	// Shards > 0 runs each trial's packet simulation on the sharded
	// conservative-window engine (netsim.NewSharded) with that many worker
	// goroutines — intra-trial parallelism for the single-trial drivers that
	// can't fan out across windows. Like Workers it never affects results:
	// the sharded engine is byte-identical at every shard count, though it
	// differs from the serial engine in two documented partition-local ways
	// (DESIGN.md §13). 0 keeps the serial engine. Incompatible with Audit —
	// the invariant auditor needs the serial engine's single event stream.
	Shards int
	// CapacityBps overrides the reference capacity the offered load is
	// scaled against. 0 derives it from the fabric set's leaf-spine spec
	// (the paper's spine-utilization rule).
	CapacityBps float64
	// KeepFlows retains the generated flow set and raw per-flow FCTs in the
	// result (for CSV export); off by default to keep results small.
	KeepFlows bool
	// Audit runs every trial under the runtime invariant auditor
	// (internal/audit): any violation — broken packet conservation, FIFO
	// corruption, TCP insanity — fails the experiment instead of silently
	// skewing the figures. Adds tracing overhead; results are unchanged.
	Audit bool
	// Ctx, when non-nil, cancels the experiment between trials: no new
	// trial window starts after Ctx is done and RunFCT returns Ctx's error
	// (unless an earlier trial already failed — the lowest-index error
	// still wins). Trials already in flight run to completion, so a
	// cancelled experiment never returns a partial pool. Nil means never
	// cancel. Like Workers, Ctx never affects the results of a run that
	// completes.
	Ctx context.Context
	// OnTrial, when non-nil, is called after each trial completes with the
	// monotonically increasing number of finished trials and the total —
	// the progress feed consumed by the spinelessd job layer. It may be
	// called concurrently from trial workers (the done counter itself is
	// monotone); it must not block for long and must not mutate experiment
	// state. Single-window runs report (1, 1) on completion.
	OnTrial func(done, total int)
	// Telemetry, when non-nil, attaches one telemetry sink per trial window
	// and the recorder merges them live (trials share the [0, WindowSec)
	// time origin, so pooled series read as aggregate offered load). A
	// recorder is scoped to one fabric: reuse across combos with different
	// link counts is rejected at merge time. Purely observational — results
	// are unchanged. Incompatible with Shards (the sharded engine has no
	// totally-ordered event stream to observe) and with Audit (the
	// invariant auditor owns the simulator's single tracer slot).
	Telemetry *telemetry.Recorder
	// JobClasses, when non-empty, replaces the cfg.Sizes uniform-start
	// workload with the Poisson-arrival job-class mix
	// (workload.GenerateClassedFlows): per-class sizes and arrival shares,
	// per-class FCT attribution in FCTResult.Classes, and — with Telemetry
	// whose Config.Classes covers the mix — per-class goodput series.
	JobClasses []workload.Class
}

// DefaultFCTConfig mirrors §5/§6: 30% spine load, Pareto(100KB, 1.05)
// flows, 10 Gbps TCP fabric.
func DefaultFCTConfig() FCTConfig {
	return FCTConfig{
		Util:      0.30,
		WindowSec: 0.02,
		Sizes:     workload.PaperFlowSizes(),
		Net:       netsim.DefaultConfig(),
		Seed:      1,
	}
}

// FCTResult is one (combo, workload) cell of Figure 4. With
// FCTConfig.Trials > 1 it is the pool of all trials: Flows and SimStats sum,
// Stats summarizes the concatenated per-flow FCTs.
type FCTResult struct {
	Combo    string
	TM       TMKind
	Flows    int
	Stats    metrics.FCTStats
	SimStats netsim.Stats
	// Classes is the per-class FCT/SLA attribution, present only when
	// FCTConfig.JobClasses ran the job-class workload. Under Trials > 1 it
	// re-attributes the concatenated per-flow FCTs of every trial.
	Classes []workload.ClassFCT `json:",omitempty"`
	// RawFlows and RawFCTNS are populated only when FCTConfig.KeepFlows is
	// set, for per-flow export via the trace package. Under Trials > 1 they
	// concatenate the trials in trial order. RawClassOf parallels RawFCTNS
	// with flow→class attributions on job-class runs.
	RawFlows   []workload.Flow
	RawFCTNS   []int64
	RawClassOf []uint8 `json:",omitempty"`
}

// RunFCT generates the workload on the combo's fabric, scales it to the
// reference utilization (with the §6.1 participation scale-down for R2R and
// C-S patterns), and measures flow completion times in the packet simulator.
//
// The reference capacity comes from fs.LeafSpineSpec so every fabric in the
// set sees the identical offered load, exactly as the paper applies one TM
// across topologies.
//
// With cfg.Trials > 1 the experiment repeats over independently seeded
// arrival windows — in parallel across cfg.Workers — and the result pools
// every trial's flows.
func RunFCT(fs *FabricSet, combo Combo, kind TMKind, cfg FCTConfig) (FCTResult, error) {
	res, err := runTrials(cfg, combo, func(seed int64) (FCTResult, error) {
		rng := rand.New(rand.NewSource(seed))
		m, placement, err := BuildTM(kind, combo.Fabric, rng)
		if err != nil {
			return FCTResult{}, err
		}
		return runFCT(fs, combo, m, placement, cfg, rng)
	})
	if err != nil {
		return FCTResult{}, err
	}
	res.TM = kind
	return res, nil
}

// RunFCTMatrix is RunFCT with an explicit rack-level matrix (e.g. an
// operator trace imported via the trace package) instead of a built-in
// workload kind.
func RunFCTMatrix(fs *FabricSet, combo Combo, m *workload.Matrix, cfg FCTConfig) (FCTResult, error) {
	res, err := runTrials(cfg, combo, func(seed int64) (FCTResult, error) {
		rng := rand.New(rand.NewSource(seed))
		return runFCT(fs, combo, m, nil, cfg, rng)
	})
	if err != nil {
		return FCTResult{}, err
	}
	res.TM = TMKind(m.Name)
	return res, nil
}

// runTrials executes one seeded trial body per trial and pools the results.
// Trials <= 1 reproduces the pre-trials engine exactly: one window seeded
// directly by cfg.Seed. Otherwise each trial's seed is derived from its
// index, the shared combo is pre-warmed (lazily-built scheme state would
// serialize workers on a mutex), and trial t's result lands in slot t — so
// the pooled output is byte-identical from workers=1 to workers=N.
func runTrials(cfg FCTConfig, combo Combo, one func(seed int64) (FCTResult, error)) (FCTResult, error) {
	// The sharded engine rejects tracers at netsim.SetTracer too, but an
	// early structured error beats a per-trial failure — and mirrors the
	// Shards+Audit guard so no layer silently drops an observer again.
	if cfg.Shards > 0 && cfg.Telemetry != nil {
		return FCTResult{}, fmt.Errorf("core: Telemetry needs the serial engine's event stream; set Shards=0")
	}
	if cfg.Audit && cfg.Telemetry != nil {
		return FCTResult{}, fmt.Errorf("core: Audit and Telemetry both need the simulator's single tracer slot; run them separately")
	}
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Trials <= 1 {
		if err := ctx.Err(); err != nil {
			return FCTResult{}, err
		}
		res, err := one(cfg.Seed)
		if err != nil {
			return FCTResult{}, err
		}
		if !cfg.KeepFlows {
			res.RawFlows, res.RawFCTNS, res.RawClassOf = nil, nil, nil
		}
		if cfg.OnTrial != nil {
			cfg.OnTrial(1, 1)
		}
		return res, nil
	}
	if parallel.Workers(cfg.Workers) > 1 {
		if pw, ok := combo.Scheme.(routing.Prewarmer); ok {
			pw.Prewarm()
		}
		combo.Fabric.Reindex() // lazy server index is a write; build it pre-fork
	}
	trials := make([]FCTResult, cfg.Trials)
	var done atomic.Int64
	err := parallel.ForEachCtx(ctx, cfg.Workers, cfg.Trials, func(t int) error {
		r, err := one(parallel.DeriveSeed(cfg.Seed, t))
		if err != nil {
			return fmt.Errorf("core: trial %d: %w", t, err)
		}
		trials[t] = r
		if cfg.OnTrial != nil {
			cfg.OnTrial(int(done.Add(1)), cfg.Trials)
		}
		return nil
	})
	if err != nil {
		return FCTResult{}, err
	}
	return mergeTrials(cfg, trials)
}

// mergeTrials pools per-trial results in trial order: counts and simulator
// stats sum, the FCT distribution is re-summarized over the concatenation
// of every trial's per-flow FCTs, and job-class runs re-attribute the
// concatenation per class (percentiles cannot be pooled from summaries).
func mergeTrials(cfg FCTConfig, trials []FCTResult) (FCTResult, error) {
	out := FCTResult{Combo: trials[0].Combo}
	var all []int64
	var allClass []uint8
	for _, r := range trials {
		out.Flows += r.Flows
		out.SimStats.Accumulate(r.SimStats)
		all = append(all, r.RawFCTNS...)
		allClass = append(allClass, r.RawClassOf...)
		if cfg.KeepFlows {
			out.RawFlows = append(out.RawFlows, r.RawFlows...)
		}
	}
	out.Stats = metrics.SummarizeFCT(all)
	if len(cfg.JobClasses) > 0 {
		classes, err := workload.ClassAttribution(cfg.JobClasses, allClass, all)
		if err != nil {
			return FCTResult{}, fmt.Errorf("core: pooling class attribution: %w", err)
		}
		out.Classes = classes
	}
	if cfg.KeepFlows {
		out.RawFCTNS = all
		out.RawClassOf = allClass
	}
	return out, nil
}

// runFCT measures one arrival window. It always records the raw per-flow
// FCTs in the result — runTrials needs them to pool trials — and the caller
// strips them when KeepFlows is off.
func runFCT(fs *FabricSet, combo Combo, m *workload.Matrix, placement []int, cfg FCTConfig, rng *rand.Rand) (FCTResult, error) {
	if cfg.Sizes == nil {
		cfg.Sizes = workload.PaperFlowSizes()
	}
	capacity := cfg.CapacityBps
	if capacity <= 0 {
		capacity = workload.SpineCapacityBps(fs.LeafSpineSpec, cfg.Net.LinkRateBps)
	}
	// §6.1: patterns where only a few racks participate are scaled down by
	// sendingRacks/totalRacks. For full-participation matrices (A2A, the FB
	// workloads) the factor is exactly 1, so applying it unconditionally
	// reproduces the paper's rule.
	load := cfg.Util * workload.ParticipationScale(m)
	meanBytes := cfg.Sizes.Mean()
	if len(cfg.JobClasses) > 0 {
		meanBytes = workload.ClassMean(cfg.JobClasses)
	}
	count := workload.FlowCountForLoad(capacity, load, meanBytes, cfg.WindowSec)
	if count < 1 {
		count = 1
	}
	if cfg.MaxFlows > 0 && count > cfg.MaxFlows {
		count = cfg.MaxFlows
	}
	var flows []workload.Flow
	var classOf []uint8
	var err error
	if len(cfg.JobClasses) > 0 {
		flows, classOf, err = workload.GenerateClassedFlows(combo.Fabric, m, workload.ClassedConfig{
			Classes:   cfg.JobClasses,
			Flows:     count,
			WindowNS:  int64(cfg.WindowSec * 1e9),
			Placement: placement,
		}, rng)
	} else {
		flows, err = workload.GenerateFlows(combo.Fabric, m, workload.GenConfig{
			Flows:     count,
			Sizes:     cfg.Sizes,
			WindowNS:  int64(cfg.WindowSec * 1e9),
			Placement: placement,
		}, rng)
	}
	if err != nil {
		return FCTResult{}, err
	}
	var res netsim.Results
	var aud *audit.Auditor
	if cfg.Shards > 0 {
		if cfg.Audit {
			return FCTResult{}, fmt.Errorf("core: Audit needs the serial engine's event stream; set Shards=0")
		}
		if cfg.Telemetry != nil {
			return FCTResult{}, fmt.Errorf("core: Telemetry needs the serial engine's event stream; set Shards=0")
		}
		ss, err := netsim.NewSharded(combo.Fabric, combo.Scheme, cfg.Net, cfg.Shards)
		if err != nil {
			return FCTResult{}, err
		}
		if res, err = ss.Run(flows); err != nil {
			return FCTResult{}, err
		}
	} else {
		sim, err := netsim.New(combo.Fabric, combo.Scheme, cfg.Net)
		if err != nil {
			return FCTResult{}, err
		}
		if cfg.Audit {
			if aud, err = audit.Attach(sim, flows); err != nil {
				return FCTResult{}, err
			}
		}
		if cfg.Telemetry != nil {
			if classOf != nil {
				_, err = cfg.Telemetry.AttachClassed(sim, classOf)
			} else {
				_, err = cfg.Telemetry.Attach(sim, len(flows))
			}
			if err != nil {
				return FCTResult{}, err
			}
		}
		if res, err = sim.Run(flows); err != nil {
			return FCTResult{}, err
		}
	}
	if aud != nil {
		if err := aud.Finish(res); err != nil {
			return FCTResult{}, fmt.Errorf("core: %s: %w", combo.Label, err)
		}
	}
	out := FCTResult{
		Combo:      combo.Label,
		Flows:      len(flows),
		Stats:      metrics.SummarizeFCT(res.FCTNS),
		SimStats:   res.Stats,
		RawFlows:   flows,
		RawFCTNS:   res.FCTNS,
		RawClassOf: classOf,
	}
	if classOf != nil {
		out.Classes, err = workload.ClassAttribution(cfg.JobClasses, classOf, res.FCTNS)
		if err != nil {
			return FCTResult{}, err
		}
	}
	return out, nil
}

// Fig4Row runs one workload across all combos — one group of bars in
// Figure 4 — and returns results in combo order. Combos are independent
// (each RunFCT reseeds from cfg.Seed), so they run in parallel across
// cfg.Workers with results written to their combo's slot; output matches
// the serial loop bit for bit.
func Fig4Row(fs *FabricSet, combos []Combo, kind TMKind, cfg FCTConfig) ([]FCTResult, error) {
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]FCTResult, len(combos))
	if parallel.Workers(cfg.Workers) > 1 {
		for _, c := range combos {
			c.Fabric.Reindex() // combos can share a fabric; index it pre-fork
		}
	}
	err := parallel.ForEachCtx(ctx, cfg.Workers, len(combos), func(i int) error {
		r, err := RunFCT(fs, combos[i], kind, cfg)
		if err != nil {
			return fmt.Errorf("core: %s × %s: %w", combos[i].Label, kind, err)
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
