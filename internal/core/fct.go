package core

import (
	"fmt"
	"math/rand"

	"spineless/internal/metrics"
	"spineless/internal/netsim"
	"spineless/internal/workload"
)

// FCTConfig parameterizes a Figure 4-style flow-completion-time experiment.
type FCTConfig struct {
	// Util is the offered load as a fraction of the reference leaf-spine's
	// spine capacity (the paper uses 0.30, §6.1).
	Util float64
	// WindowSec is the arrival window over which flows start.
	WindowSec float64
	// Sizes is the flow-size distribution (§5.2's Pareto by default).
	Sizes workload.SizeDist
	// Net is the packet-level simulator configuration.
	Net netsim.Config
	// MaxFlows caps the generated flow count (0 = uncapped) so scaled-down
	// studies stay tractable.
	MaxFlows int
	// Seed drives all sampling.
	Seed int64
	// CapacityBps overrides the reference capacity the offered load is
	// scaled against. 0 derives it from the fabric set's leaf-spine spec
	// (the paper's spine-utilization rule).
	CapacityBps float64
	// KeepFlows retains the generated flow set and raw per-flow FCTs in the
	// result (for CSV export); off by default to keep results small.
	KeepFlows bool
}

// DefaultFCTConfig mirrors §5/§6: 30% spine load, Pareto(100KB, 1.05)
// flows, 10 Gbps TCP fabric.
func DefaultFCTConfig() FCTConfig {
	return FCTConfig{
		Util:      0.30,
		WindowSec: 0.02,
		Sizes:     workload.PaperFlowSizes(),
		Net:       netsim.DefaultConfig(),
		Seed:      1,
	}
}

// FCTResult is one (combo, workload) cell of Figure 4.
type FCTResult struct {
	Combo    string
	TM       TMKind
	Flows    int
	Stats    metrics.FCTStats
	SimStats netsim.Stats
	// RawFlows and RawFCTNS are populated only when FCTConfig.KeepFlows is
	// set, for per-flow export via the trace package.
	RawFlows []workload.Flow
	RawFCTNS []int64
}

// RunFCT generates the workload on the combo's fabric, scales it to the
// reference utilization (with the §6.1 participation scale-down for R2R and
// C-S patterns), and measures flow completion times in the packet simulator.
//
// The reference capacity comes from fs.LeafSpineSpec so every fabric in the
// set sees the identical offered load, exactly as the paper applies one TM
// across topologies.
func RunFCT(fs *FabricSet, combo Combo, kind TMKind, cfg FCTConfig) (FCTResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	m, placement, err := BuildTM(kind, combo.Fabric, rng)
	if err != nil {
		return FCTResult{}, err
	}
	res, err := runFCT(fs, combo, m, placement, cfg, rng)
	if err != nil {
		return FCTResult{}, err
	}
	res.TM = kind
	return res, nil
}

// RunFCTMatrix is RunFCT with an explicit rack-level matrix (e.g. an
// operator trace imported via the trace package) instead of a built-in
// workload kind.
func RunFCTMatrix(fs *FabricSet, combo Combo, m *workload.Matrix, cfg FCTConfig) (FCTResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	res, err := runFCT(fs, combo, m, nil, cfg, rng)
	if err != nil {
		return FCTResult{}, err
	}
	res.TM = TMKind(m.Name)
	return res, nil
}

func runFCT(fs *FabricSet, combo Combo, m *workload.Matrix, placement []int, cfg FCTConfig, rng *rand.Rand) (FCTResult, error) {
	if cfg.Sizes == nil {
		cfg.Sizes = workload.PaperFlowSizes()
	}
	capacity := cfg.CapacityBps
	if capacity <= 0 {
		capacity = workload.SpineCapacityBps(fs.LeafSpineSpec, cfg.Net.LinkRateBps)
	}
	// §6.1: patterns where only a few racks participate are scaled down by
	// sendingRacks/totalRacks. For full-participation matrices (A2A, the FB
	// workloads) the factor is exactly 1, so applying it unconditionally
	// reproduces the paper's rule.
	load := cfg.Util * workload.ParticipationScale(m)
	count := workload.FlowCountForLoad(capacity, load, cfg.Sizes.Mean(), cfg.WindowSec)
	if count < 1 {
		count = 1
	}
	if cfg.MaxFlows > 0 && count > cfg.MaxFlows {
		count = cfg.MaxFlows
	}
	flows, err := workload.GenerateFlows(combo.Fabric, m, workload.GenConfig{
		Flows:     count,
		Sizes:     cfg.Sizes,
		WindowNS:  int64(cfg.WindowSec * 1e9),
		Placement: placement,
	}, rng)
	if err != nil {
		return FCTResult{}, err
	}
	sim, err := netsim.New(combo.Fabric, combo.Scheme, cfg.Net)
	if err != nil {
		return FCTResult{}, err
	}
	res, err := sim.Run(flows)
	if err != nil {
		return FCTResult{}, err
	}
	out := FCTResult{
		Combo:    combo.Label,
		Flows:    len(flows),
		Stats:    metrics.SummarizeFCT(res.FCTNS),
		SimStats: res.Stats,
	}
	if cfg.KeepFlows {
		out.RawFlows = flows
		out.RawFCTNS = res.FCTNS
	}
	return out, nil
}

// Fig4Row runs one workload across all combos — one group of bars in
// Figure 4 — and returns results in combo order.
func Fig4Row(fs *FabricSet, combos []Combo, kind TMKind, cfg FCTConfig) ([]FCTResult, error) {
	out := make([]FCTResult, 0, len(combos))
	for _, c := range combos {
		r, err := RunFCT(fs, c, kind, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: %s × %s: %w", c.Label, kind, err)
		}
		out = append(out, r)
	}
	return out, nil
}
