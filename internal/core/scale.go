package core

import (
	"fmt"
	"math/rand"

	"spineless/internal/parallel"
	"spineless/internal/topology"
)

// ScalePoint is one x-position of Figure 6: a DRing of the given size
// against its equipment-matched RRG under uniform traffic.
type ScalePoint struct {
	Supernodes int
	Racks      int
	Servers    int
	// Ratio is p99FCT(DRing)/p99FCT(RRG); > 1 means the DRing is worse.
	Ratio float64
	// MedianRatio is the same for median FCT (extra context; not in the paper).
	MedianRatio float64
}

// ScaleConfig parameterizes the Figure 6 sweep. The DRing geometry is the
// §6.3 configuration: TorsPerSupernode switches of Ports ports each, with
// Ports−4×TorsPerSupernode server links per ToR.
type ScaleConfig struct {
	TorsPerSupernode int
	Ports            int
	Scheme           string // routing scheme name for both fabrics
	// Topology picks the fabric measured against the equipment-matched RRG
	// denominator: "dring" (default, the paper's Figure 6) or a bake-off
	// fabric "xpander", "debruijn" or "rng" built on the same budget.
	Topology string
	FCT      FCTConfig
	// Workers bounds sweep-point parallelism (0 = one per CPU). Points are
	// independent — each builds its own fabrics and reseeds from FCT.Seed —
	// so the sweep is bit-identical at any worker count.
	Workers int
}

// DefaultScaleConfig uses the paper's §6.3 geometry (6 ToRs per supernode,
// 60 ports, 36 server links) with ECMP, which suffices for uniform traffic.
func DefaultScaleConfig() ScaleConfig {
	return ScaleConfig{TorsPerSupernode: 6, Ports: 60, Scheme: "ecmp", FCT: DefaultFCTConfig()}
}

// ScaleSweep measures how the DRing degrades with scale (Figure 6): for
// each supernode count it builds the DRing and an equipment-matched RRG,
// runs the uniform workload on both, and reports the p99 FCT ratio.
// Points run in parallel across cfg.Workers, each into its own slot.
func ScaleSweep(supernodeCounts []int, cfg ScaleConfig) ([]ScalePoint, error) {
	out := make([]ScalePoint, len(supernodeCounts))
	err := parallel.ForEach(cfg.Workers, len(supernodeCounts), func(i int) error {
		m := supernodeCounts[i]
		pt, err := scalePoint(m, cfg)
		if err != nil {
			return fmt.Errorf("core: scale m=%d: %w", m, err)
		}
		out[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func scalePoint(m int, cfg ScaleConfig) (ScalePoint, error) {
	spec := topology.Uniform(m, cfg.TorsPerSupernode, cfg.Ports)
	num, err := topology.DRing(spec)
	if err != nil {
		return ScalePoint{}, err
	}
	rng := rand.New(rand.NewSource(cfg.FCT.Seed))
	switch cfg.Topology {
	case "", "dring":
		// The paper's sweep: the DRing itself is the numerator.
	case "xpander", "debruijn", "rng":
		// A bake-off fabric on the same equipment budget as the DRing at
		// this sweep point; the denominator RRG is matched to it, so the
		// ratio stays "fabric vs its own equipment-matched expander".
		num, err = FlatFabric(cfg.Topology, num.N(), 4*cfg.TorsPerSupernode, cfg.Ports, num.Servers(), rng)
		if err != nil {
			return ScalePoint{}, err
		}
	default:
		return ScalePoint{}, fmt.Errorf("core: unknown scale topology %q (want dring, xpander, debruijn or rng)", cfg.Topology)
	}
	dr := num
	rrg, err := MatchedRRG(dr, rng)
	if err != nil {
		return ScalePoint{}, err
	}
	// Keep per-server offered load constant across sweep points: the
	// capacity reference scales with the fabric (half the aggregate server
	// bandwidth), so Util=0.3 offers each server 15% of its NIC — enough
	// that the DRing's growing mean path length turns into queueing at
	// large m while the expander stays comfortable, which is the §6.3
	// effect. (A fixed reference, or a flow cap, would skew per-server
	// load across sweep points and invert the trend.)
	fctCfg := cfg.FCT
	fctCfg.CapacityBps = float64(dr.Servers()) * fctCfg.Net.LinkRateBps / 2
	fs := &FabricSet{LeafSpineSpec: topology.LeafSpineSpec{X: 1, Y: 1}} // unused with CapacityBps set

	numLabel := cfg.Topology
	if numLabel == "" {
		numLabel = "dring"
	}
	drCombo, err := NewCombo(numLabel, dr, cfg.Scheme)
	if err != nil {
		return ScalePoint{}, err
	}
	rrgCombo, err := NewCombo("rrg", rrg, cfg.Scheme)
	if err != nil {
		return ScalePoint{}, err
	}
	drRes, err := RunFCT(fs, drCombo, TMA2A, fctCfg)
	if err != nil {
		return ScalePoint{}, err
	}
	rrgRes, err := RunFCT(fs, rrgCombo, TMA2A, fctCfg)
	if err != nil {
		return ScalePoint{}, err
	}
	return ScalePoint{
		Supernodes:  m,
		Racks:       dr.N(),
		Servers:     dr.Servers(),
		Ratio:       drRes.Stats.P99MS / rrgRes.Stats.P99MS,
		MedianRatio: drRes.Stats.MedianMS / rrgRes.Stats.MedianMS,
	}, nil
}
