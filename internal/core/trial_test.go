package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestTrialPassesThroughSuccess(t *testing.T) {
	if err := Trial("ok", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestTrialWrapsErrors(t *testing.T) {
	cause := errors.New("disconnected pair")
	err := Trial("f=0.5", func() error { return cause })
	var te TrialError
	if !errors.As(err, &te) || te.Label != "f=0.5" {
		t.Fatalf("error not a labeled TrialError: %v", err)
	}
	if !errors.Is(err, cause) {
		t.Fatal("cause not unwrappable")
	}
}

func TestTrialRecoversPanics(t *testing.T) {
	err := Trial("boom", func() error { panic("index out of range") })
	if err == nil {
		t.Fatal("panic escaped the trial")
	}
	if !strings.Contains(err.Error(), "index out of range") {
		t.Fatalf("panic cause lost: %v", err)
	}
}

func TestTrialErrorsAggregate(t *testing.T) {
	var es TrialErrors
	for i := 0; i < 3; i++ {
		if err := Trial(fmt.Sprintf("t%d", i), func() error {
			if i == 1 {
				return errors.New("bad draw")
			}
			return nil
		}); err != nil {
			es = append(es, err.(TrialError))
		}
	}
	if len(es) != 1 {
		t.Fatalf("aggregated %d errors, want 1", len(es))
	}
	if !strings.Contains(es.Error(), "t1") {
		t.Fatalf("summary lost the label: %s", es.Error())
	}
}
