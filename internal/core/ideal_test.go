package core

import (
	"math"
	"testing"

	"spineless/internal/workload"
)

func TestIdealThroughputUniformLeafSpine(t *testing.T) {
	fs := tinyFabrics(t)
	m := workload.Uniform(len(fs.LeafSpine.Racks()))
	lam, err := IdealThroughput(fs.LeafSpine, m, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if lam <= 0 {
		t.Fatalf("λ = %v", lam)
	}
	// Analytic ceiling for uniform traffic on leaf-spine(6,2): all demand
	// crosses the leaf→spine layer twice (up, down); aggregate spine
	// capacity is leaves×y = 16 link units per direction. Total demand is
	// 8×7 = 56 units, so λ ≤ 16/56 ≈ 0.2857.
	if lam > 16.0/56.0*1.001 {
		t.Fatalf("λ = %v exceeds the spine-capacity ceiling %v", lam, 16.0/56.0)
	}
	// The FPTAS should land within ~20% of the ceiling (ECMP-perfect
	// fabrics achieve it exactly).
	if lam < 16.0/56.0*0.8 {
		t.Fatalf("λ = %v far below the achievable %v", lam, 16.0/56.0)
	}
}

func TestIdealThroughputFlatBeatsLeafSpineOnHotRack(t *testing.T) {
	fs := tinyFabrics(t)
	// Hot rack 0 fans out uniformly: the §3.1 bottleneck case.
	mk := func(n int) *workload.Matrix {
		m := workload.NewMatrix("hot", n)
		for j := 1; j < n; j++ {
			m.W[0][j] = 1
		}
		return m
	}
	lamLS, err := IdealThroughput(fs.LeafSpine, mk(len(fs.LeafSpine.Racks())), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	lamRRG, err := IdealThroughput(fs.RRG, mk(len(fs.RRG.Racks())), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// The flat rewiring has 2× the egress per hot rack (UDF); under ideal
	// routing the ratio shows up directly (normalized per unit demand the
	// leaf-spine rack has y=2 uplinks over 7 units, the flat rack ~4 links
	// over 9 units).
	lsCeiling := 2.0 / 7.0
	if math.Abs(lamLS-lsCeiling) > 0.1*lsCeiling {
		t.Fatalf("leaf-spine hot-rack λ = %v, want ≈%v", lamLS, lsCeiling)
	}
	perDemandLS := lamLS * 7
	perDemandRRG := lamRRG * float64(len(fs.RRG.Racks())-1)
	if perDemandRRG <= perDemandLS*1.2 {
		t.Fatalf("flat ideal hot-rack egress %v not clearly above leaf-spine %v", perDemandRRG, perDemandLS)
	}
}

func TestRoutingEfficiency(t *testing.T) {
	fs := tinyFabrics(t)
	m := workload.Uniform(len(fs.RRG.Racks()))
	la, lb, ratio, err := RoutingEfficiency(fs.RRG, fs.DRing, m, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if la <= 0 || lb <= 0 || math.Abs(ratio-la/lb) > 1e-12 {
		t.Fatalf("la=%v lb=%v ratio=%v", la, lb, ratio)
	}
	// Mismatched rack counts must error.
	if _, _, _, err := RoutingEfficiency(fs.LeafSpine, fs.DRing, m, 0.1); err == nil {
		t.Fatal("rack mismatch accepted")
	}
}
