package core

import (
	"fmt"

	"spineless/internal/routing"
	"spineless/internal/topology"
)

// Combo pairs a fabric with a routing scheme, labeled as in Figure 4.
type Combo struct {
	Label  string
	Fabric *topology.Graph
	Scheme routing.Scheme
}

// NewCombo builds a combo from a fabric and a scheme name: "ecmp",
// "shortest-union(K)" / "suK", "kspK", "vlb", the path-count-weighted
// variants "wcmp" (weighted ECMP) and "wsuK", or the flat-fabric natives
// "selfroute" (De Bruijn shift-register routing; the fabric must be a De
// Bruijn graph) and "spvlb" (shortest-path ECMP with VLB fallback).
func NewCombo(label string, g *topology.Graph, scheme string) (Combo, error) {
	var s routing.Scheme
	var err error
	switch {
	case scheme == "ecmp":
		s = routing.NewECMP(g)
	case scheme == "wcmp":
		s = routing.NewWeighted(routing.NewECMP(g))
	case scheme == "vlb":
		s = routing.NewVLB(g)
	case scheme == "selfroute":
		s, err = routing.NewDeBruijn(g)
	case scheme == "spvlb":
		s = routing.NewSPVLB(g)
	case len(scheme) == 3 && scheme[:2] == "su":
		s, err = routing.NewShortestUnion(g, int(scheme[2]-'0'))
	case len(scheme) == 4 && scheme[:3] == "wsu":
		var fib *routing.Fib
		fib, err = routing.NewShortestUnion(g, int(scheme[3]-'0'))
		if err == nil {
			s = routing.NewWeighted(fib)
		}
	case len(scheme) == 4 && scheme[:3] == "ksp":
		s, err = routing.NewKSP(g, int(scheme[3]-'0'))
	default:
		err = fmt.Errorf("core: unknown scheme %q", scheme)
	}
	if err != nil {
		return Combo{}, err
	}
	return Combo{Label: label, Fabric: g, Scheme: s}, nil
}

// PaperCombos returns the five Figure 4 combinations: leaf-spine(ecmp),
// DRing(shortest-union(2)), RRG(shortest-union(2)), DRing(ecmp), RRG(ecmp).
func PaperCombos(fs *FabricSet) ([]Combo, error) {
	specs := []struct {
		label, scheme string
		g             *topology.Graph
	}{
		{"leaf-spine (ecmp)", "ecmp", fs.LeafSpine},
		{"DRing (shortest-union(2))", "su2", fs.DRing},
		{"RRG (shortest-union(2))", "su2", fs.RRG},
		{"DRing (ecmp)", "ecmp", fs.DRing},
		{"RRG (ecmp)", "ecmp", fs.RRG},
	}
	out := make([]Combo, 0, len(specs))
	for _, sp := range specs {
		c, err := NewCombo(sp.label, sp.g, sp.scheme)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}
