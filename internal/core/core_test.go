package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"spineless/internal/topology"
	"spineless/internal/workload"
)

func testRNG() *rand.Rand { return rand.New(rand.NewSource(2)) }

// tinyFabrics builds a small equipment-matched trio for fast tests:
// leaf-spine(6,2) = 8 racks, 48 servers, 10 switches.
func tinyFabrics(t *testing.T) *FabricSet {
	t.Helper()
	fs, err := BuildFabrics(topology.LeafSpineSpec{X: 6, Y: 2}, 0, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func fastFCTConfig() FCTConfig {
	cfg := DefaultFCTConfig()
	cfg.WindowSec = 0.002
	cfg.MaxFlows = 120
	cfg.Sizes = workload.Pareto{MeanBytes: 20e3, Alpha: 1.05, Cap: 200e3}
	cfg.Net.MaxSimTime = 5 * time.Second
	return cfg
}

func TestBuildFabricsEquipmentMatched(t *testing.T) {
	fs := tinyFabrics(t)
	if fs.LeafSpine.N() != fs.RRG.N() || fs.LeafSpine.N() != fs.DRing.N() {
		t.Fatalf("switch counts differ: %d %d %d", fs.LeafSpine.N(), fs.RRG.N(), fs.DRing.N())
	}
	if fs.LeafSpine.Servers() != fs.RRG.Servers() {
		t.Fatalf("RRG servers %d != leaf-spine %d", fs.RRG.Servers(), fs.LeafSpine.Servers())
	}
	// DRing server count is close but not identical (§5.1: ~2.8% fewer).
	dev := math.Abs(float64(fs.DRing.Servers())-float64(fs.LeafSpine.Servers())) / float64(fs.LeafSpine.Servers())
	if dev > 0.25 {
		t.Fatalf("DRing servers %d too far from %d", fs.DRing.Servers(), fs.LeafSpine.Servers())
	}
	for _, g := range []*topology.Graph{fs.LeafSpine, fs.RRG, fs.DRing} {
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		if !g.Connected() {
			t.Fatalf("%s disconnected", g.Name)
		}
	}
}

func TestPaperFabricsMatchesSection51(t *testing.T) {
	fs, err := PaperFabrics(testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if n := len(fs.LeafSpine.Racks()); n != 64 {
		t.Fatalf("leaf-spine racks = %d, want 64", n)
	}
	if n := fs.DRing.N(); n != 80 {
		t.Fatalf("DRing racks = %d, want 80", n)
	}
	if s := fs.DRing.Servers(); s < 2940 || s > 3040 {
		t.Fatalf("DRing servers = %d, want ≈2988", s)
	}
	if s := fs.RRG.Servers(); s != 3072 {
		t.Fatalf("RRG servers = %d, want 3072", s)
	}
}

func TestScaledFabrics(t *testing.T) {
	fs, err := ScaledFabrics(4, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if fs.LeafSpineSpec.X != 12 || fs.LeafSpineSpec.Y != 4 {
		t.Fatalf("spec = %+v", fs.LeafSpineSpec)
	}
	if fs.LeafSpineSpec.Oversubscription() != 3 {
		t.Fatal("oversubscription not preserved")
	}
	if _, err := ScaledFabrics(5, testRNG()); err == nil {
		t.Fatal("bad factor accepted")
	}
}

func TestPaperCombos(t *testing.T) {
	fs := tinyFabrics(t)
	combos, err := PaperCombos(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(combos) != 5 {
		t.Fatalf("combos = %d, want 5", len(combos))
	}
	wantLabels := []string{
		"leaf-spine (ecmp)", "DRing (shortest-union(2))", "RRG (shortest-union(2))",
		"DRing (ecmp)", "RRG (ecmp)",
	}
	for i, c := range combos {
		if c.Label != wantLabels[i] {
			t.Fatalf("combo %d label %q, want %q", i, c.Label, wantLabels[i])
		}
	}
}

func TestNewComboSchemes(t *testing.T) {
	fs := tinyFabrics(t)
	for _, s := range []string{"ecmp", "su2", "su3", "ksp4", "vlb", "wcmp", "wsu2"} {
		if _, err := NewCombo("x", fs.DRing, s); err != nil {
			t.Fatalf("scheme %s: %v", s, err)
		}
	}
	if _, err := NewCombo("x", fs.DRing, "magic"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestBuildTMAllKinds(t *testing.T) {
	fs := tinyFabrics(t)
	for _, kind := range AllTMKinds() {
		m, placement, err := BuildTM(kind, fs.DRing, testRNG())
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		wantPlacement := kind == TMFBSkewedRP || kind == TMFBUniformRP
		if (placement != nil) != wantPlacement {
			t.Fatalf("%s: placement presence = %v", kind, placement != nil)
		}
	}
	if _, _, err := BuildTM("nope", fs.DRing, testRNG()); err == nil {
		t.Fatal("unknown TM accepted")
	}
}

func TestRunFCTProducesStats(t *testing.T) {
	fs := tinyFabrics(t)
	combo, err := NewCombo("DRing su2", fs.DRing, "su2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFCT(fs, combo, TMA2A, fastFCTConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows == 0 || res.Stats.Count == 0 {
		t.Fatalf("no flows measured: %+v", res)
	}
	if res.Stats.Incomplete != 0 {
		t.Fatalf("%d incomplete flows", res.Stats.Incomplete)
	}
	if res.Stats.MedianMS <= 0 || res.Stats.P99MS < res.Stats.MedianMS {
		t.Fatalf("suspicious stats: %+v", res.Stats)
	}
}

func TestRunFCTDeterministicAcrossSeeds(t *testing.T) {
	fs := tinyFabrics(t)
	combo, err := NewCombo("ls", fs.LeafSpine, "ecmp")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastFCTConfig()
	a, err := RunFCT(fs, combo, TMFBSkewed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFCT(fs, combo, TMFBSkewed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Fatalf("same seed diverged: %+v vs %+v", a.Stats, b.Stats)
	}
	cfg.Seed = 99
	c, err := RunFCT(fs, combo, TMFBSkewed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats == c.Stats {
		t.Fatal("different seeds produced identical stats (suspicious)")
	}
}

func TestFig4Row(t *testing.T) {
	fs := tinyFabrics(t)
	combos, err := PaperCombos(fs)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Fig4Row(fs, combos[:2], TMA2A, fastFCTConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestCSThroughputAndHeatmap(t *testing.T) {
	fs := tinyFabrics(t)
	dr, err := NewCombo("dring", fs.DRing, "su2")
	if err != nil {
		t.Fatal(err)
	}
	ls, err := NewCombo("ls", fs.LeafSpine, "ecmp")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultThroughputConfig()
	agg, err := CSThroughput(dr, 4, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if agg <= 0 {
		t.Fatalf("aggregate = %v", agg)
	}
	h, err := CSRatioHeatmap(dr, ls, []int{2, 6}, []int{4, 8}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for yi := range h.YTicks {
		for xi := range h.XTicks {
			v := h.Cells[yi][xi]
			if math.IsNaN(v) || v <= 0 {
				t.Fatalf("cell (%d,%d) = %v", xi, yi, v)
			}
		}
	}
}

// TestSkewedThroughputGain pins the §6.2 headline in miniature: for a
// skewed C-S pattern (|C| ≪ |S|) the DRing's throughput approaches the
// UDF-predicted 2× over leaf-spine.
func TestSkewedThroughputGain(t *testing.T) {
	fs := tinyFabrics(t)
	dr, err := NewCombo("dring", fs.DRing, "su2")
	if err != nil {
		t.Fatal(err)
	}
	ls, err := NewCombo("ls", fs.LeafSpine, "ecmp")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultThroughputConfig()
	cfg.FlowsPerHost = 4
	// One full rack of clients blasting at many servers: ToR-bottlenecked.
	c := fs.LeafSpineSpec.X
	s := 3 * c
	a, err := CSThroughput(dr, c, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CSThroughput(ls, c, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := a / b
	if ratio < 1.15 {
		t.Fatalf("DRing/leaf-spine skewed throughput ratio = %.2f, want > 1.15", ratio)
	}
	// The generic bound is NSR(DRing)/NSR(leaf-spine), which exceeds the
	// UDF=2 of the exact rewiring when the tiny DRing hosts fewer servers
	// per ToR. Here NSR(DRing)=1 vs NSR(LS)=1/3 ⇒ bound 3.
	nsrD := float64(fs.DRing.NetworkDegree(0)) / float64(fs.DRing.ServerCount(0))
	bound := nsrD / (float64(fs.LeafSpineSpec.Y) / float64(fs.LeafSpineSpec.X))
	if ratio > bound*1.1 {
		t.Fatalf("ratio = %.2f, beyond the NSR bound %.2f", ratio, bound)
	}
}

func TestScaleSweep(t *testing.T) {
	cfg := DefaultScaleConfig()
	cfg.TorsPerSupernode = 3
	cfg.Ports = 20 // 12 network + 8 server links per ToR
	cfg.FCT = fastFCTConfig()
	pts, err := ScaleSweep([]int{5, 7}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Racks != p.Supernodes*3 {
			t.Fatalf("racks = %d for m=%d", p.Racks, p.Supernodes)
		}
		if p.Ratio <= 0 || math.IsNaN(p.Ratio) {
			t.Fatalf("ratio = %v", p.Ratio)
		}
	}
}

func TestUDFStudy(t *testing.T) {
	rows, err := UDFStudy([]topology.LeafSpineSpec{{X: 6, Y: 2}, {X: 12, Y: 4}}, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if math.Abs(r.UDFAnalytic-2) > 1e-9 {
			t.Fatalf("analytic UDF = %v", r.UDFAnalytic)
		}
		if math.Abs(r.UDFEmpirical-2) > 0.15 {
			t.Fatalf("empirical UDF = %v", r.UDFEmpirical)
		}
		if r.FlatRacks <= r.Racks {
			t.Fatalf("flat racks %d not more than baseline %d", r.FlatRacks, r.Racks)
		}
	}
	table := UDFTable(rows)
	if table == "" {
		t.Fatal("empty table")
	}
}

func TestMatchedRRGPreservesEquipment(t *testing.T) {
	dr, err := topology.DRing(topology.Uniform(6, 3, 20))
	if err != nil {
		t.Fatal(err)
	}
	rrg, err := MatchedRRG(dr, testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if rrg.N() != dr.N() || rrg.Servers() != dr.Servers() || rrg.Ports != dr.Ports {
		t.Fatalf("equipment mismatch: %v vs %v", rrg, dr)
	}
	for v := 0; v < dr.N(); v++ {
		if rrg.NetworkDegree(v) != dr.NetworkDegree(v) {
			t.Fatalf("degree mismatch at %d", v)
		}
	}
}
